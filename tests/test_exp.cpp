// Experiment harness: sweeps must be deterministic regardless of worker
// count (per-point seeds, ordered results).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>

#include "core/routing.hpp"
#include "exp/flags.hpp"
#include "exp/sweep.hpp"
#include "net/deployment.hpp"
#include "util/rng.hpp"

namespace mhp {
namespace {

TEST(Sweep, ResultsInPointOrder) {
  std::vector<int> points{5, 3, 9, 1};
  const auto results = mhp::exp::sweep<int, int>(
      points, std::function<int(const int&)>([](const int& p) {
        return p * 10;
      }),
      2);
  EXPECT_EQ(results, (std::vector<int>{50, 30, 90, 10}));
}

TEST(Sweep, WorkerCountDoesNotChangeResults) {
  std::vector<std::uint64_t> points(40);
  for (std::size_t i = 0; i < points.size(); ++i) points[i] = i;
  auto fn = std::function<double(const std::uint64_t&)>(
      [](const std::uint64_t& seed) {
        Rng rng(seed);  // per-point seed: identical on any worker
        double acc = 0.0;
        for (int k = 0; k < 100; ++k) acc += rng.uniform();
        return acc;
      });
  const auto serial = mhp::exp::sweep<std::uint64_t, double>(points, fn, 1);
  const auto wide = mhp::exp::sweep<std::uint64_t, double>(points, fn, 8);
  EXPECT_EQ(serial, wide);
}

TEST(Sweep, FixedSeedSweepIsByteIdenticalAcrossWorkerCounts) {
  // Serialise every result to full precision: the bytes — not just the
  // rounded values — must match whatever the parallelism.
  std::vector<std::uint64_t> points(32);
  for (std::size_t i = 0; i < points.size(); ++i) points[i] = 7 * i + 1;
  auto fn = std::function<std::string(const std::uint64_t&)>(
      [](const std::uint64_t& seed) {
        Rng rng(seed);
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g|%.17g|%llu", rng.uniform(),
                      rng.exponential(3.0),
                      static_cast<unsigned long long>(rng.below(1000)));
        return std::string(buf);
      });
  std::string blobs[3];
  std::size_t w = 0;
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const auto results =
        mhp::exp::sweep<std::uint64_t, std::string>(points, fn, workers);
    for (const auto& r : results) blobs[w] += r + "\n";
    ++w;
  }
  EXPECT_EQ(blobs[0], blobs[1]);
  EXPECT_EQ(blobs[0], blobs[2]);
}

TEST(Sweep, RuntimeOptionsReachEveryPoint) {
  mhp::exp::SweepOptions opts;
  opts.workers = 3;
  opts.runtime.trace_max_entries = 123;
  std::vector<int> points{1, 2, 3, 4, 5};
  const auto results = mhp::exp::sweep<int, std::size_t>(
      points,
      std::function<std::size_t(const int&, const RuntimeOptions&)>(
          [](const int&, const RuntimeOptions& rt) {
            return rt.trace_max_entries;
          }),
      opts);
  ASSERT_EQ(results.size(), points.size());
  for (const auto r : results) EXPECT_EQ(r, 123u);
}

TEST(Sweep, EmptyPoints) {
  const auto results = mhp::exp::sweep<int, int>(
      {}, std::function<int(const int&)>([](const int&) { return 0; }));
  EXPECT_TRUE(results.empty());
}

TEST(Sweep, PerfScalingWorkloadIsDeterministicAcrossWorkers) {
  // The perf_scaling bench's per-point pipeline (fixed-seed deployment →
  // grid topology → min-max-load routing) must digest identically with
  // one worker and eight: grid construction and the flow solver are pure
  // functions of the point, and each point reseeds its own Rng.
  const std::vector<std::size_t> points{50, 200};
  auto fn = std::function<std::string(const std::size_t&)>(
      [](const std::size_t& n) {
        Rng rng(0x9e1f + n);
        const double side = std::sqrt(1000.0 * static_cast<double>(n));
        const Deployment dep =
            deploy_connected_uniform_square(n, side, 60.0, rng);
        const ClusterTopology topo = disc_topology(dep, 60.0);
        const std::vector<std::int64_t> demand(n, 1);
        const RelayPlan plan = RelayPlan::balanced(topo, demand);
        std::string digest = std::to_string(topo.sensor_links().edge_count());
        digest += '|';
        digest += std::to_string(plan.max_load());
        for (NodeId s = 0; s < n; ++s)
          for (const NodeId hop : plan.path_for_cycle(s, 0).hops) {
            digest += ',';
            digest += std::to_string(hop);
          }
        return digest;
      });
  const auto serial =
      mhp::exp::sweep<std::size_t, std::string>(points, fn, 1);
  const auto wide = mhp::exp::sweep<std::size_t, std::string>(points, fn, 8);
  EXPECT_EQ(serial, wide);
}

TEST(Sweep, ExceptionPropagates) {
  std::vector<int> points{1, 2, 3};
  EXPECT_THROW(
      (mhp::exp::sweep<int, int>(points,
                                 std::function<int(const int&)>(
                                     [](const int& p) -> int {
                                       if (p == 2)
                                         throw std::runtime_error("boom");
                                       return p;
                                     }),
                                 2)),
      std::runtime_error);
}

// ---------- Flags::count_value ----------

mhp::exp::Flags workers_flags(std::vector<const char*> argv) {
  mhp::exp::Flags flags("test");
  flags.option("--workers", "N", "worker count");
  argv.insert(argv.begin(), "prog");
  flags.parse(static_cast<int>(argv.size()),
              const_cast<char**>(argv.data()));
  return flags;
}

TEST(Flags, CountValueParsesDigitsAndFallsBack) {
  EXPECT_EQ(workers_flags({"--workers", "8"}).count_value("--workers", 0),
            8u);
  EXPECT_EQ(workers_flags({"--workers=0"}).count_value("--workers", 3), 0u);
  EXPECT_EQ(workers_flags({}).count_value("--workers", 5), 5u);
}

// Regression: mhp_run used std::stoul on --workers, so "--workers abc"
// crashed with an uncaught std::invalid_argument instead of the usage +
// exit 2 every other flag error produces.  count_value is the strict
// parser path both the single-run and --campaign sites now use.
TEST(FlagsDeath, NonNumericCountValueIsUsageError) {
  auto flags = workers_flags({"--workers", "abc"});
  EXPECT_EXIT(flags.count_value("--workers", 0),
              testing::ExitedWithCode(2), "non-negative integer");
}

TEST(FlagsDeath, NegativeCountValueIsUsageError) {
  auto flags = workers_flags({"--workers", "-2"});
  EXPECT_EXIT(flags.count_value("--workers", 0),
              testing::ExitedWithCode(2), "non-negative integer");
}

TEST(FlagsDeath, OverflowingCountValueIsUsageError) {
  auto flags = workers_flags({"--workers", "99999999999999999999999"});
  EXPECT_EXIT(flags.count_value("--workers", 0),
              testing::ExitedWithCode(2), "too large");
}

}  // namespace
}  // namespace mhp
