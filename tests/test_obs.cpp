// Observability layer tests: the JSON value/writer/parser, report
// exporters for all three simulation stacks, per-node labeled series,
// histogram metrics, the JSONL trace sink, bench reports and the crash
// flight recorder.
#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <locale>
#include <sstream>

#include "baseline/smac_simulation.hpp"
#include "core/multi_cluster_sim.hpp"
#include "core/polling_simulation.hpp"
#include "exp/bench_json.hpp"
#include "metrics/registry.hpp"
#include "net/deployment.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/report_json.hpp"
#include "obs/run_recorder.hpp"
#include "sim/runtime.hpp"
#include "util/assertx.hpp"
#include "util/rng.hpp"

namespace mhp {
namespace {

using obs::Json;
using obs::parse_json;

// ---------- Json value tree ----------

TEST(Json, TypesAndAccessors) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).as_bool());
  EXPECT_EQ(Json(42).as_int(), 42);
  EXPECT_EQ(Json(std::uint64_t{7}).as_uint(), 7u);
  EXPECT_DOUBLE_EQ(Json(2.5).as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Json(3).as_double(), 3.0);  // int reads as number too
  EXPECT_EQ(Json("hi").as_string(), "hi");
  EXPECT_THROW(Json("hi").as_int(), std::logic_error);
  EXPECT_THROW(Json(-1).as_uint(), std::out_of_range);
  // uint64 beyond int64 is unrepresentable: throws, never wraps.
  EXPECT_THROW(Json(~std::uint64_t{0}), std::overflow_error);
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  Json o = Json::object();
  o.set("zebra", Json(1)).set("apple", Json(2)).set("mango", Json(3));
  ASSERT_EQ(o.size(), 3u);
  EXPECT_EQ(o.items()[0].first, "zebra");
  EXPECT_EQ(o.items()[1].first, "apple");
  EXPECT_EQ(o.items()[2].first, "mango");
  o.set("apple", Json(9));  // overwrite keeps position
  EXPECT_EQ(o.items()[1].first, "apple");
  EXPECT_EQ(o.at("apple").as_int(), 9);
  EXPECT_EQ(o.find("missing"), nullptr);
  EXPECT_THROW(o.at("missing"), std::out_of_range);
}

TEST(Json, CompactAndPrettyWriting) {
  Json o = Json::object();
  o.set("n", Json(1)).set("s", Json("x"));
  Json arr = Json::array();
  arr.push_back(Json(true));
  arr.push_back(Json());
  o.set("a", std::move(arr));
  EXPECT_EQ(o.dump(), "{\"n\":1,\"s\":\"x\",\"a\":[true,null]}");
  const std::string pretty = o.dump(2);
  EXPECT_NE(pretty.find("{\n  \"n\": 1,"), std::string::npos);
}

TEST(Json, EscapingRoundTrips) {
  const std::string nasty = "quote\" slash\\ nl\n tab\t ctl\x01 end";
  const Json v(nasty);
  const std::string text = v.dump();
  EXPECT_EQ(parse_json(text).as_string(), nasty);
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
}

TEST(Json, NumbersRoundTripExactly) {
  // Integers stay integers; doubles reparse to the same bit pattern.
  EXPECT_TRUE(parse_json("123").is_int());
  EXPECT_FALSE(parse_json("123.0").is_int());
  EXPECT_EQ(parse_json(Json(1234567890123456789LL).dump()).as_int(),
            1234567890123456789LL);
  const double tricky = 245.33333333333331;
  EXPECT_EQ(parse_json(Json(tricky).dump()).as_double(), tricky);
  EXPECT_EQ(parse_json("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_double(), 1000.0);
}

TEST(Json, ParserIsStrict) {
  EXPECT_THROW(parse_json(""), obs::JsonParseError);
  EXPECT_THROW(parse_json("{\"a\":1,}"), obs::JsonParseError);
  EXPECT_THROW(parse_json("[1 2]"), obs::JsonParseError);
  EXPECT_THROW(parse_json("tru"), obs::JsonParseError);
  EXPECT_THROW(parse_json("{} trailing"), obs::JsonParseError);
  EXPECT_THROW(parse_json("\"unterminated"), obs::JsonParseError);
  // Nested structures parse fine.
  const Json v = parse_json(R"({"a":[1,{"b":null}], "c":"é"})");
  EXPECT_EQ(v.at("a").at(1).at("b").type(), Json::Type::kNull);
  EXPECT_EQ(v.at("c").as_string(), "\xc3\xa9");  // UTF-8 é
}

TEST(Json, MalformedNumbersRejectedWholeToken) {
  // The number scanner's character class admits these shapes; the
  // whole-token conversion check must reject them instead of silently
  // keeping a numeric prefix (the old strtod-based parser turned "1..2"
  // into 1.0).
  for (const char* text : {"1..2", "1e+5e-2", "1e", "1e+", "1e-", "1.2.3",
                           "1-2", "--1", "+1", "1e5e2", "-", "2-", "3.4.5e1"})
    EXPECT_THROW(parse_json(text), obs::JsonParseError) << text;
  // Inside containers too, with the offending token in the message.
  try {
    parse_json("[1, 1..2]");
    FAIL() << "expected JsonParseError";
  } catch (const obs::JsonParseError& e) {
    EXPECT_EQ(e.line(), 1u);
    EXPECT_GE(e.offset(), 4u);
    EXPECT_NE(std::string(e.what()).find("1..2"), std::string::npos);
  }
}

TEST(Json, AsIntRangeChecksDoubles) {
  // Integral doubles convert exactly.
  EXPECT_EQ(Json(2.0).as_int(), 2);
  EXPECT_EQ(Json(-0.0).as_int(), 0);
  EXPECT_EQ(Json(9007199254740992.0).as_int(), 9007199254740992LL);  // 2^53
  // -2^63 is exactly representable and in range; +2^63 is out.
  EXPECT_EQ(Json(-9223372036854775808.0).as_int(),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_THROW(Json(9223372036854775808.0).as_int(), std::out_of_range);
  // Non-integral values used to truncate silently (1.7 read as 1).
  EXPECT_THROW(Json(1.7).as_int(), std::logic_error);
  EXPECT_THROW(Json(-0.5).as_int(), std::logic_error);
  // Out-of-range values used to be undefined behavior in the cast.
  EXPECT_THROW(Json(1e300).as_int(), std::out_of_range);
  EXPECT_THROW(Json(-1e300).as_int(), std::out_of_range);
  EXPECT_THROW(Json(std::numeric_limits<double>::infinity()).as_int(),
               std::out_of_range);
  EXPECT_THROW(Json(std::numeric_limits<double>::quiet_NaN()).as_int(),
               std::out_of_range);
  // as_uint rides on as_int and inherits the checks.
  EXPECT_THROW(Json(1e300).as_uint(), std::out_of_range);
}

/// Flip both the C locale and the C++ global locale (they reach printf
/// and ostreams respectively), restoring C/classic on scope exit.
class GlobalLocaleFlip {
 public:
  explicit GlobalLocaleFlip(const char* name) {
    c_ok_ = std::setlocale(LC_ALL, name) != nullptr;
    try {
      old_ = std::locale::global(std::locale(name));
      cpp_ok_ = true;
    } catch (const std::runtime_error&) {
      // The C++ runtime may not ship this locale even when libc does.
    }
  }
  ~GlobalLocaleFlip() {
    std::setlocale(LC_ALL, "C");
    if (cpp_ok_) std::locale::global(old_);
  }
  bool c_ok() const { return c_ok_; }

 private:
  bool c_ok_ = false;
  bool cpp_ok_ = false;
  std::locale old_;
};

TEST(Json, NumberCodecIgnoresGlobalLocale) {
  // A comma-decimal, dot-grouping locale used to leak into the codec:
  // snprintf("%.17g") wrote "1,5" and ostream << int wrote "1.234.567".
  const char* chosen = nullptr;
  for (const char* c : {"de_DE.UTF-8", "de_DE.utf8", "de_DE"})
    if (std::setlocale(LC_ALL, c) != nullptr) {
      chosen = c;
      break;
    }
  std::setlocale(LC_ALL, "C");
  if (chosen == nullptr)
    GTEST_SKIP() << "no comma-decimal locale installed (CI generates one)";

  GlobalLocaleFlip flip(chosen);
  ASSERT_TRUE(flip.c_ok());
  EXPECT_EQ(Json(1.5).dump(), "1.5");
  EXPECT_EQ(Json(0.25).dump(), "0.25");
  EXPECT_EQ(Json(1234567).dump(), "1234567");
  EXPECT_EQ(Json(-9876543210LL).dump(), "-9876543210");
  EXPECT_EQ(parse_json("1.5").as_double(), 1.5);
  EXPECT_EQ(parse_json("[1234567, -2.5e3]").dump(), "[1234567,-2500.0]");
}

TEST(Json, DumpParseDumpIsIdentityOnBoundaryNumbers) {
  // dump → parse → dump must be byte-identical, and the reparsed value
  // bit-exact (17 significant digits are value-faithful for doubles).
  // Subnormals are the historical trap: glibc's stod raises ERANGE on
  // them, so 5e-324 used to come back as a parse error.
  const double doubles[] = {
      0.0,
      -0.0,
      0.5,
      1.0 / 3.0,
      245.33333333333331,
      1e-300,
      1e300,
      std::numeric_limits<double>::denorm_min(),  // 5e-324
      4.9406564584124654e-324,
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::epsilon(),
      9007199254740993.0,            // first double above 2^53
      9223372036854775808.0,         // 2^63
      -9223372036854775808.0,        // -2^63
      1.7976931348623157e308,
  };
  for (const double v : doubles) {
    const std::string once = Json(v).dump();
    const Json back = parse_json(once);
    ASSERT_EQ(back.type(), Json::Type::kDouble) << once;
    EXPECT_EQ(back.dump(), once);
    EXPECT_EQ(back.as_double(), v) << once;
    EXPECT_EQ(std::signbit(back.as_double()), std::signbit(v)) << once;
  }
  const std::int64_t ints[] = {
      0,
      1,
      -1,
      9007199254740993LL,  // not representable as a double
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min(),
  };
  for (const std::int64_t v : ints) {
    const std::string once = Json(v).dump();
    const Json back = parse_json(once);
    ASSERT_TRUE(back.is_int()) << once;
    EXPECT_EQ(back.dump(), once);
    EXPECT_EQ(back.as_int(), v) << once;
  }
}

// ---------- Histogram metric + labeled series ----------

TEST(Metrics, HistogramQuantilesAndMoments) {
  MetricsRegistry m;
  HistogramMetric& h = m.histogram("lat", 0.0, 10.0, 100);
  for (int i = 1; i <= 100; ++i) h.observe(i / 10.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 0.1);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_NEAR(h.mean(), 5.05, 1e-9);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.2);
  EXPECT_NEAR(h.quantile(0.95), 9.5, 0.2);
  // Same name returns the same histogram; shape params ignored after
  // first use.
  EXPECT_EQ(&m.histogram("lat", 0.0, 1.0, 2), &h);
  const MetricsSnapshot snap = m.snapshot(Time::sec(1));
  EXPECT_EQ(snap.histogram("lat").count, 100u);
  EXPECT_NEAR(snap.histogram("lat").p50, 5.0, 0.2);
  EXPECT_EQ(snap.histogram("absent").count, 0u);
}

TEST(Metrics, NodeMetricNamesRoundTripThroughSnapshots) {
  EXPECT_EQ(node_metric("node.energy_j", 7), "node.energy_j{node=7}");
  MetricsRegistry m;
  m.counter(node_metric("node.packets_relayed", 0)).add(5);
  m.counter(node_metric("node.packets_relayed", 12)).add(9);
  m.counter("node.packets_relayed_other{node=1}").add(99);  // different base
  m.gauge(node_metric("node.energy_j", 3)).set(Time::sec(1), 0.25);
  const MetricsSnapshot snap = m.snapshot(Time::sec(2));
  const auto relayed = snap.labeled_counters("node.packets_relayed");
  ASSERT_EQ(relayed.size(), 2u);
  EXPECT_EQ(relayed.at(0), 5u);
  EXPECT_EQ(relayed.at(12), 9u);
  const auto energy = snap.labeled_gauges("node.energy_j");
  ASSERT_EQ(energy.size(), 1u);
  EXPECT_DOUBLE_EQ(energy.at(3), 0.25);
}

// ---------- Report serialization: all three stacks ----------

Deployment small_deployment(std::uint64_t seed, std::size_t n = 10) {
  Rng rng(seed);
  return deploy_connected_uniform_square(n, 150.0, 60.0, rng);
}

/// Serialize, reparse, and check the envelope plus exact round-trip of
/// the standard metric:: counters.  `stats_key` descends one level first
/// for reports whose RunStats is nested (multi-cluster "totals").
Json roundtrip_and_check(const Json& doc, const char* kind,
                         const MetricsSnapshot& snap,
                         const char* stats_key = nullptr) {
  const Json back = parse_json(doc.dump(2));
  EXPECT_EQ(back.at("schema").as_int(), obs::kReportSchemaVersion);
  EXPECT_EQ(back.at("kind").as_string(), kind);
  const Json& stats = stats_key != nullptr ? back.at("report").at(stats_key)
                                           : back.at("report");
  const Json& counters = stats.at("metrics").at("counters");
  for (const char* name :
       {metric::kPacketsGenerated, metric::kPacketsDelivered,
        metric::kBytesDelivered, metric::kChannelFramesTx}) {
    const Json* v = counters.find(name);
    EXPECT_NE(v, nullptr) << name;
    if (v != nullptr) {
      EXPECT_EQ(v->as_uint(), snap.counter(name)) << name;
    }
  }
  return back;
}

TEST(ReportJson, PollingReportRoundTrips) {
  ProtocolConfig cfg;
  PollingSimulation sim(small_deployment(1, 12), cfg, 20.0);
  const SimulationReport rep = sim.run(Time::sec(30), Time::sec(10));
  const Json back =
      roundtrip_and_check(obs::to_json(rep), "polling", rep.metrics);
  const Json& r = back.at("report");
  EXPECT_EQ(r.at("packets_generated").as_uint(), rep.packets_generated);
  EXPECT_EQ(r.at("delivery_ratio").as_double(), rep.delivery_ratio);
  EXPECT_EQ(r.at("sectors").as_uint(), rep.sectors);
  // Latency percentiles come from the registry histogram.
  EXPECT_GT(rep.latency_p95_s, 0.0);
  EXPECT_GE(rep.latency_p95_s, rep.latency_p50_s);
  EXPECT_GE(rep.latency_p99_s, rep.latency_p95_s);
  EXPECT_EQ(r.at("latency_p95_s").as_double(), rep.latency_p95_s);
  EXPECT_GT(r.at("queue_depth_p50").as_double(), 0.0);
  // Run recorder fields are stamped (non-deterministic, so >-checks only).
  EXPECT_GT(r.at("run").at("events_processed").as_uint(), 0u);
  EXPECT_GT(r.at("run").at("wall_seconds").as_double(), 0.0);
  EXPECT_GT(r.at("run").at("events_per_sec").as_double(), 0.0);
  // Per-node series present for every sensor, both flat and regrouped.
  const Json& per_node = r.at("metrics").at("per_node");
  EXPECT_EQ(per_node.at(metric::kNodeEnergyJ).size(), 12u);
  EXPECT_EQ(per_node.at(metric::kNodeRelayed).size(), 12u);
  EXPECT_EQ(per_node.at(metric::kNodeAwakeS).size(), 12u);
  const auto energy = rep.metrics.labeled_gauges(metric::kNodeEnergyJ);
  for (const auto& [id, value] : energy) {
    EXPECT_GT(value, 0.0);
    EXPECT_EQ(per_node.at(metric::kNodeEnergyJ)
                  .at(std::to_string(id))
                  .as_double(),
              value);
  }
}

TEST(ReportJson, SmacReportRoundTrips) {
  SmacConfig cfg;
  SmacSimulation sim(small_deployment(1), cfg, 15.0);
  const SmacReport rep = sim.run(Time::sec(20), Time::sec(5));
  const Json back =
      roundtrip_and_check(obs::to_json(rep), "smac", rep.metrics);
  const Json& r = back.at("report");
  EXPECT_EQ(r.at("control_frames").as_uint(), rep.control_frames);
  EXPECT_EQ(r.at("packets_dropped").as_uint(), rep.packets_dropped);
  // Per-node accounting covers the sensors (sink excluded).
  EXPECT_EQ(rep.metrics.labeled_gauges(metric::kNodeEnergyJ).size(), 10u);
  EXPECT_EQ(rep.metrics.labeled_counters(metric::kNodeRelayed).size(), 10u);
  // S-MAC relays via intermediate hops: someone forwarded something.
  std::uint64_t total_relayed = 0;
  for (const auto& [id, v] :
       rep.metrics.labeled_counters(metric::kNodeRelayed))
    total_relayed += v;
  EXPECT_GT(total_relayed, 0u);
}

TEST(ReportJson, MultiClusterReportRoundTrips) {
  std::vector<ClusterSpec> specs;
  Rng rng(3);
  for (int i = 0; i < 2; ++i) {
    ClusterSpec spec;
    spec.deployment = deploy_connected_uniform_square(8, 150.0, 60.0, rng);
    spec.origin = {i * 200.0, 0.0};
    specs.push_back(std::move(spec));
  }
  ProtocolConfig cfg;
  cfg.seed = 3;
  MultiClusterSimulation sim(specs, cfg, InterClusterMode::kColored, 30.0);
  const MultiClusterReport rep = sim.run(Time::sec(25), Time::sec(10));
  const Json back = roundtrip_and_check(obs::to_json(rep), "multi_cluster",
                                        rep.totals.metrics, "totals");
  const Json& r = back.at("report");
  EXPECT_EQ(r.at("channels_used").as_int(), rep.channels_used);
  ASSERT_EQ(r.at("clusters").size(), 2u);
  EXPECT_EQ(r.at("clusters").at(0).at("delivery_ratio").as_double(),
            rep.delivery_ratio[0]);
  // Field-wide per-node ids are unique across clusters: 8 + 8 sensors.
  EXPECT_EQ(rep.totals.metrics.labeled_gauges(metric::kNodeEnergyJ).size(),
            16u);
}

// ---------- Deployment + trace serialization ----------

TEST(ReportJson, DeploymentAndTraceSerialize) {
  const Deployment dep = small_deployment(5);
  const Json d = obs::to_json(dep);
  EXPECT_EQ(d.at("num_sensors").as_uint(), dep.num_sensors());
  EXPECT_EQ(d.at("sensors").size(), dep.num_sensors());
  EXPECT_EQ(parse_json(d.dump()).at("head").at("x").as_double(),
            dep.head_pos().x);

  Trace trace;
  trace.enable(TraceCat::kProtocol);
  trace.set_max_entries(2);
  trace.record(Time::ms(1), TraceCat::kProtocol, "one");
  trace.record(Time::ms(2), TraceCat::kProtocol, "two");
  trace.record(Time::ms(3), TraceCat::kProtocol, "three");
  const Json t = parse_json(obs::trace_to_json(trace).dump());
  EXPECT_EQ(t.at("dropped").as_uint(), 1u);
  ASSERT_EQ(t.at("entries").size(), 2u);
  EXPECT_EQ(t.at("entries").at(0).at("text").as_string(), "two");
  EXPECT_EQ(t.at("entries").at(1).at("cat").as_string(), "protocol");
}

TEST(ReportJson, JsonlTraceSinkLinesParse) {
  std::ostringstream log;
  RuntimeOptions opts;
  opts.trace_jsonl_stream = &log;
  SimRuntime rt(1, opts);
  rt.trace().enable(TraceCat::kProtocol);
  rt.trace().record(Time::ms(1), TraceCat::kProtocol, "plain");
  rt.trace().record(Time::ms(2), TraceCat::kProtocol,
                    "with \"quotes\"\nand newline");
  std::istringstream in(log.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    const Json v = parse_json(line);  // every line is one strict document
    EXPECT_TRUE(v.at("t_s").is_number());
    EXPECT_EQ(v.at("cat").as_string(), "protocol");
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
  // The escaped entry round-trips through the sink's own escaper.
  std::istringstream in2(log.str());
  std::getline(in2, line);
  std::getline(in2, line);
  EXPECT_EQ(parse_json(line).at("text").as_string(),
            "with \"quotes\"\nand newline");
}

// ---------- Bench reports ----------

TEST(BenchJson, TableAndRecorderSerializeAndParseBack) {
  Table table({"sensors", "rate B/s", "note"});
  table.add_row({static_cast<long long>(10), 20.5, std::string("ok")});
  table.add_row({static_cast<long long>(20), 40.25, std::string("sat")});
  obs::RunRecorder recorder;
  recorder.add_events(12345);

  const std::string path = "BENCH_test_obs_tmp.json";
  ASSERT_TRUE(exp::save_bench_json("test_obs_tmp", table, recorder, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buf;
  buf << in.rdbuf();
  const Json v = parse_json(buf.str());
  std::remove(path.c_str());

  EXPECT_EQ(v.at("schema").as_int(), obs::kReportSchemaVersion);
  EXPECT_EQ(v.at("bench").as_string(), "test_obs_tmp");
  EXPECT_EQ(v.at("run").at("events_processed").as_uint(), 12345u);
  EXPECT_GE(v.at("run").at("wall_seconds").as_double(), 0.0);
  ASSERT_EQ(v.at("points").size(), 2u);
  const Json& p0 = v.at("points").at(0);
  EXPECT_TRUE(p0.at("sensors").is_int());  // cell types survive
  EXPECT_EQ(p0.at("sensors").as_int(), 10);
  EXPECT_DOUBLE_EQ(p0.at("rate B/s").as_double(), 20.5);
  EXPECT_EQ(v.at("points").at(1).at("note").as_string(), "sat");
}

// ---------- Flight recorder ----------

TEST(FlightRecorder, DumpsTraceTailAndMetricsOnContractFailure) {
  SimRuntime rt(1);
  rt.trace().enable(TraceCat::kProtocol);
  for (int i = 0; i < 10; ++i)
    rt.trace().record(Time::ms(i), TraceCat::kProtocol,
                      "entry " + std::to_string(i));
  rt.metrics().counter("boom.counter").add(3);

  std::ostringstream out;
  obs::FlightRecorder::Options opts;
  opts.tail_entries = 3;
  opts.out = &out;
  obs::FlightRecorder recorder(rt, opts);
  EXPECT_FALSE(recorder.dumped());

  // No propagation adopted: this precondition fails and must trigger the
  // post-mortem before the ContractViolation propagates.
  EXPECT_THROW(rt.propagation(), ContractViolation);
  EXPECT_TRUE(recorder.dumped());
  const std::string dump = out.str();
  EXPECT_NE(dump.find("flight recorder"), std::string::npos);
  EXPECT_NE(dump.find("propagation"), std::string::npos);  // failing expr
  // Only the newest 3 entries of the ring tail.
  EXPECT_EQ(dump.find("entry 6"), std::string::npos);
  EXPECT_NE(dump.find("entry 7"), std::string::npos);
  EXPECT_NE(dump.find("entry 9"), std::string::npos);
  EXPECT_NE(dump.find("boom.counter = 3"), std::string::npos);

  // One post-mortem per recorder: a second failure doesn't re-dump.
  EXPECT_THROW(rt.propagation(), ContractViolation);
  EXPECT_EQ(dump, out.str());
}

TEST(FlightRecorder, DisarmsOnDestruction) {
  SimRuntime rt(1);
  std::ostringstream out;
  {
    obs::FlightRecorder::Options opts;
    opts.out = &out;
    obs::FlightRecorder recorder(rt, opts);
  }
  EXPECT_THROW(rt.propagation(), ContractViolation);
  EXPECT_TRUE(out.str().empty());
}

// ---------- Contract failure hooks ----------

TEST(ContractHooks, RunLifoAndSwallowHookExceptions) {
  std::vector<int> order;
  const int t1 = add_contract_failure_hook(
      [&order](const ContractFailureInfo&) { order.push_back(1); });
  const int t2 = add_contract_failure_hook(
      [&order](const ContractFailureInfo& info) {
        order.push_back(2);
        EXPECT_STREQ(info.kind, "precondition");
        EXPECT_NE(info.message.find("boom"), std::string::npos);
        throw std::runtime_error("hook failure must be swallowed");
      });
  EXPECT_THROW(MHP_REQUIRE(false, "boom"), ContractViolation);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);  // newest first
  EXPECT_EQ(order[1], 1);
  remove_contract_failure_hook(t1);
  remove_contract_failure_hook(t2);
  order.clear();
  EXPECT_THROW(MHP_REQUIRE(false, "again"), ContractViolation);
  EXPECT_TRUE(order.empty());
}

// ---------- Routing policy: load balance acceptance ----------

TEST(RoutingPolicy, BalancedRoutingLowersWorstRelayLoad) {
  // Same fixed-seed deployment under both policies; the max-flow plan
  // (§III-A) must spread relaying so its worst sensor forwards fewer
  // packets than under hop-count shortest paths.
  Rng rng(1);
  const Deployment dep = deploy_connected_uniform_square(24, 200.0, 60.0,
                                                         rng);
  auto worst_relayed = [&dep](RoutingPolicy policy) {
    ProtocolConfig cfg;
    cfg.routing = policy;
    PollingSimulation sim(dep, cfg, 40.0);
    const SimulationReport rep = sim.run(Time::sec(30), Time::sec(10));
    EXPECT_GT(rep.delivery_ratio, 0.9);
    std::uint64_t worst = 0;
    for (const auto& [id, v] :
         rep.metrics.labeled_counters(metric::kNodeRelayed))
      worst = std::max(worst, v);
    return worst;
  };
  const std::uint64_t balanced =
      worst_relayed(RoutingPolicy::kBalancedMaxFlow);
  const std::uint64_t shortest = worst_relayed(RoutingPolicy::kShortestPath);
  EXPECT_GT(shortest, 0u);
  EXPECT_LT(balanced, shortest);
}

}  // namespace
}  // namespace mhp
