#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "util/assertx.hpp"
#include "flow/max_flow.hpp"
#include "flow/min_max_load.hpp"
#include "net/deployment.hpp"
#include "util/rng.hpp"

namespace mhp {
namespace {

// ---------- FlowNetwork ----------

TEST(FlowNetwork, ArcBookkeeping) {
  FlowNetwork net;
  net.add_nodes(3);
  const int e = net.add_arc(0, 1, 5);
  EXPECT_EQ(net.arc_from(e), 0);
  EXPECT_EQ(net.arc_to(e), 1);
  EXPECT_EQ(net.capacity(e), 5);
  EXPECT_EQ(net.flow(e), 0);
  net.push(e, 3);
  EXPECT_EQ(net.flow(e), 3);
  EXPECT_EQ(net.residual(e), 2);
  EXPECT_EQ(net.residual(e ^ 1), 3);  // twin gained
  net.reset_flow();
  EXPECT_EQ(net.flow(e), 0);
}

TEST(FlowNetwork, PushBeyondResidualThrows) {
  FlowNetwork net;
  net.add_nodes(2);
  const int e = net.add_arc(0, 1, 1);
  EXPECT_THROW(net.push(e, 2), ContractViolation);
}

// ---------- Max flow ----------

/// The classic CLRS example network with max flow 23.
FlowNetwork clrs_network() {
  FlowNetwork net;
  net.add_nodes(6);  // s=0, v1..v4=1..4, t=5
  net.add_arc(0, 1, 16);
  net.add_arc(0, 2, 13);
  net.add_arc(1, 3, 12);
  net.add_arc(2, 1, 4);
  net.add_arc(2, 4, 14);
  net.add_arc(3, 2, 9);
  net.add_arc(3, 5, 20);
  net.add_arc(4, 3, 7);
  net.add_arc(4, 5, 4);
  return net;
}

TEST(MaxFlow, ClrsExampleBothAlgorithms) {
  auto a = clrs_network();
  EXPECT_EQ(max_flow(a, 0, 5, MaxFlowAlgo::kEdmondsKarp), 23);
  auto b = clrs_network();
  EXPECT_EQ(max_flow(b, 0, 5, MaxFlowAlgo::kDinic), 23);
}

TEST(MaxFlow, DisconnectedIsZero) {
  FlowNetwork net;
  net.add_nodes(4);
  net.add_arc(0, 1, 10);
  net.add_arc(2, 3, 10);
  EXPECT_EQ(max_flow(net, 0, 3), 0);
}

TEST(MaxFlow, ParallelArcsAdd) {
  FlowNetwork net;
  net.add_nodes(2);
  net.add_arc(0, 1, 3);
  net.add_arc(0, 1, 4);
  EXPECT_EQ(max_flow(net, 0, 1), 7);
}

/// Check capacity limits and conservation of the flow left on the network.
void expect_valid_flow(const FlowNetwork& net, int s, int t,
                       FlowNetwork::Cap value) {
  std::vector<FlowNetwork::Cap> balance(
      static_cast<std::size_t>(net.num_nodes()), 0);
  for (int e = 0; e < net.num_arcs(); e += 2) {
    EXPECT_GE(net.flow(e), 0);
    EXPECT_LE(net.flow(e), net.capacity(e));
    balance[static_cast<std::size_t>(net.arc_from(e))] -= net.flow(e);
    balance[static_cast<std::size_t>(net.arc_to(e))] += net.flow(e);
  }
  for (int v = 0; v < net.num_nodes(); ++v) {
    if (v == s)
      EXPECT_EQ(balance[static_cast<std::size_t>(v)], -value);
    else if (v == t)
      EXPECT_EQ(balance[static_cast<std::size_t>(v)], value);
    else
      EXPECT_EQ(balance[static_cast<std::size_t>(v)], 0);
  }
}

class RandomMaxFlow : public ::testing::TestWithParam<int> {};

TEST_P(RandomMaxFlow, AlgorithmsAgreeAndFlowsAreValid) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 2 + static_cast<int>(rng.below(10));
  FlowNetwork a;
  a.add_nodes(n);
  const int arcs = n + static_cast<int>(rng.below(20));
  std::vector<std::tuple<int, int, FlowNetwork::Cap>> spec;
  for (int k = 0; k < arcs; ++k) {
    const int u = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    const int v = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    const auto c = static_cast<FlowNetwork::Cap>(1 + rng.below(20));
    spec.push_back({u, v, c});
    a.add_arc(u, v, c);
  }
  FlowNetwork b;
  b.add_nodes(n);
  for (const auto& [u, v, c] : spec) b.add_arc(u, v, c);

  const auto fa = max_flow(a, 0, n - 1, MaxFlowAlgo::kEdmondsKarp);
  const auto fb = max_flow(b, 0, n - 1, MaxFlowAlgo::kDinic);
  EXPECT_EQ(fa, fb);
  expect_valid_flow(a, 0, n - 1, fa);
  expect_valid_flow(b, 0, n - 1, fb);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMaxFlow, ::testing::Range(0, 25));

// ---------- Min-max load ----------

/// Star: every sensor hears the head directly → max load = own demand.
TEST(MinMaxLoad, SingleHopStar) {
  Graph g(4);
  ClusterTopology topo(std::move(g), {true, true, true, true});
  const auto r = solve_min_max_load(topo, {3, 1, 2, 1});
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.max_load, 3);
  EXPECT_EQ(r.load, (std::vector<std::int64_t>{3, 1, 2, 1}));
  for (NodeId s = 0; s < 4; ++s) {
    ASSERT_EQ(r.paths[s].size(), 1u);
    EXPECT_EQ(r.paths[s][0].hops, (std::vector<NodeId>{s, topo.head()}));
  }
}

/// Chain 2-1-0-head: loads accumulate toward the head.
TEST(MinMaxLoad, ChainAccumulates) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  ClusterTopology topo(std::move(g), {true, false, false});
  const auto r = solve_min_max_load(topo, {1, 1, 1});
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.max_load, 3);  // sensor 0 relays everything
  EXPECT_EQ(r.load[0], 3);
  EXPECT_EQ(r.load[2], 1);
}

/// Diamond: 2 can reach the head via 0 or 1; balancing splits the load.
TEST(MinMaxLoad, DiamondBalances) {
  Graph g(3);
  g.add_edge(2, 0);
  g.add_edge(2, 1);
  ClusterTopology topo(std::move(g), {true, true, false});
  const auto r = solve_min_max_load(topo, {1, 1, 2});
  ASSERT_TRUE(r.feasible);
  // Sensor 2's two packets split across both gateways: each gateway
  // carries its own packet plus one relayed — max load 2 instead of 3.
  EXPECT_EQ(r.max_load, 2);
  EXPECT_EQ(r.load[2], 2);
  EXPECT_EQ(r.load[0] + r.load[1], 4);
  EXPECT_LE(std::max(r.load[0], r.load[1]), 2);
  // Sensor 2 got two unit paths (or one path of two units through... no:
  // balancing forces a split).
  std::int64_t units = 0;
  for (const auto& p : r.paths[2]) units += p.units;
  EXPECT_EQ(units, 2);
  EXPECT_EQ(r.paths[2].size(), 2u);
}

TEST(MinMaxLoad, InfeasibleWhenDisconnected) {
  Graph g(2);
  ClusterTopology topo(std::move(g), {true, false});
  const auto r = solve_min_max_load(topo, {1, 1});
  EXPECT_FALSE(r.feasible);
}

TEST(MinMaxLoad, ZeroDemandTriviallyFeasible) {
  Graph g(2);
  ClusterTopology topo(std::move(g), {true, false});
  const auto r = solve_min_max_load(topo, {0, 0});
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.max_load, 0);
}

TEST(MinMaxLoad, WeightsShiftLoadToStrongSensors) {
  // Diamond again, but gateway 0 has double capacity.
  Graph g(3);
  g.add_edge(2, 0);
  g.add_edge(2, 1);
  ClusterTopology topo(std::move(g), {true, true, false});
  const auto r = solve_min_max_load(topo, {1, 1, 4}, {2, 1, 2});
  ASSERT_TRUE(r.feasible);
  // δ* such that 2δ (node 0) + 1δ (node 1) handles its own + 4 relayed.
  EXPECT_GE(r.load[0], r.load[1]);
}

/// Paths must exist in the topology, end at the head and meet demand.
void expect_valid_paths(const ClusterTopology& topo,
                        const std::vector<std::int64_t>& demand,
                        const MinMaxLoadResult& r) {
  for (NodeId s = 0; s < topo.num_sensors(); ++s) {
    std::int64_t units = 0;
    for (const auto& p : r.paths[s]) {
      ASSERT_GE(p.hops.size(), 2u);
      EXPECT_EQ(p.hops.front(), s);
      EXPECT_EQ(p.hops.back(), topo.head());
      for (std::size_t i = 0; i + 1 < p.hops.size(); ++i) {
        if (i + 2 == p.hops.size())
          EXPECT_TRUE(topo.head_hears(p.hops[i]));
        else
          EXPECT_TRUE(topo.sensors_linked(p.hops[i], p.hops[i + 1]));
      }
      units += p.units;
    }
    EXPECT_EQ(units, demand[s]);
  }
  // Reported loads match the paths.
  std::vector<std::int64_t> load(topo.num_sensors(), 0);
  for (const auto& list : r.paths)
    for (const auto& p : list)
      for (std::size_t i = 0; i + 1 < p.hops.size(); ++i)
        load[p.hops[i]] += p.units;
  EXPECT_EQ(load, r.load);
  EXPECT_EQ(*std::max_element(load.begin(), load.end()), r.max_load);
}

class RandomMinMaxLoad : public ::testing::TestWithParam<int> {};

TEST_P(RandomMinMaxLoad, PathsValidAndNeverWorseThanShortestPath) {
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 5 + rng.below(15);
  const Deployment dep =
      deploy_connected_uniform_square(n, 150.0, 60.0, rng);
  const ClusterTopology topo = disc_topology(dep, 60.0);
  std::vector<std::int64_t> demand(n);
  for (auto& d : demand) d = static_cast<std::int64_t>(rng.below(4));

  const auto balanced = solve_min_max_load(topo, demand);
  ASSERT_TRUE(balanced.feasible);
  expect_valid_paths(topo, demand, balanced);

  const auto shortest = solve_shortest_path_routing(topo, demand);
  ASSERT_TRUE(shortest.feasible);
  expect_valid_paths(topo, demand, shortest);

  EXPECT_LE(balanced.max_load, shortest.max_load);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMinMaxLoad, ::testing::Range(0, 20));

TEST(MinMaxLoad, EdmondsKarpAgreesWithDinic) {
  Rng rng(77);
  const Deployment dep = deploy_connected_uniform_square(12, 150.0, 60.0, rng);
  const ClusterTopology topo = disc_topology(dep, 60.0);
  std::vector<std::int64_t> demand(12, 2);
  const auto a = solve_min_max_load(topo, demand, {},
                                    MaxFlowAlgo::kEdmondsKarp);
  const auto b = solve_min_max_load(topo, demand, {}, MaxFlowAlgo::kDinic);
  EXPECT_EQ(a.max_load, b.max_load);
}

}  // namespace
}  // namespace mhp
