// Scenario & campaign subsystem: duration codec, strict schema parsing
// with path-qualified errors, canonical round-trips, golden equivalence
// between file-driven and C++-constructed runs, and campaign
// expansion/resume semantics.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "baseline/smac_simulation.hpp"
#include "core/polling_simulation.hpp"
#include "obs/report_json.hpp"
#include "scenario/campaign.hpp"
#include "scenario/run_scenario.hpp"
#include "scenario/scenario.hpp"
#include "util/rng.hpp"

namespace mhp::scenario {
namespace {

// ---------- durations ----------

TEST(Duration, ParsesEveryUnit) {
  EXPECT_EQ(parse_duration("5ns"), Time::ns(5));
  EXPECT_EQ(parse_duration("20us"), Time::us(20));
  EXPECT_EQ(parse_duration("1500ms"), Time::ms(1500));
  EXPECT_EQ(parse_duration("40s"), Time::sec(40));
  EXPECT_EQ(parse_duration("0s"), Time::zero());
}

TEST(Duration, ParsesFractions) {
  EXPECT_EQ(parse_duration("1.5ms"), Time::us(1500));
  EXPECT_EQ(parse_duration("0.25s"), Time::ms(250));
  EXPECT_EQ(parse_duration("2.5us"), Time::ns(2500));
}

TEST(Duration, RejectsMalformedStrings) {
  for (const char* bad : {"", "12", "s", "12 s", "-5ms", "1.5ns", "1.s",
                          ".5s", "12m", "1e3s", "5secs"}) {
    EXPECT_THROW(parse_duration(bad), ScenarioError) << bad;
  }
}

TEST(Duration, FormatsInLargestExactUnit) {
  EXPECT_EQ(format_duration(Time::sec(40)), "40s");
  EXPECT_EQ(format_duration(Time::ms(1500)), "1500ms");
  EXPECT_EQ(format_duration(Time::us(20)), "20us");
  EXPECT_EQ(format_duration(Time::ns(7)), "7ns");
  EXPECT_EQ(format_duration(Time::zero()), "0s");
}

TEST(Duration, FormatParseRoundTripsArbitraryValues) {
  SplitMix64 rng(99);
  for (int i = 0; i < 200; ++i) {
    const Time t = Time::ns(static_cast<std::int64_t>(rng.next() >> 20));
    EXPECT_EQ(parse_duration(format_duration(t)), t);
  }
}

// Regression: the fraction used to be converted as (frac * ns_per_unit)
// / frac_den, which signed-overflows (UB) once frac has ~18 digits — the
// reduction must happen before the multiply.  Exercised under UBSan.
TEST(Duration, LongFractionsDoNotOverflow) {
  // Finer than 1 ns in every unit: rejected, never UB.
  for (const char* sub_ns :
       {"0.999999999999999999s", "1.999999999999999999s",
        "0.999999999999999999ms", "0.999999999999999999us",
        "0.999999999999999999ns", "0.100000000000000001s"}) {
    EXPECT_THROW(parse_duration(sub_ns), ScenarioError) << sub_ns;
  }
  // Long but exact fractions (trailing zeros) must still parse: the
  // reduced value is a whole number of nanoseconds.
  EXPECT_EQ(parse_duration("0.999999999000000000s"), Time::ns(999'999'999));
  EXPECT_EQ(parse_duration("0.500000000000000000s"), Time::ms(500));
  EXPECT_EQ(parse_duration("1.250000000000000000ms"), Time::us(1250));
  EXPECT_EQ(parse_duration("3.000000000000000000us"), Time::us(3));
  // Maximum resolution of each unit parses exactly.
  EXPECT_EQ(parse_duration("0.999999999s"), Time::ns(999'999'999));
  EXPECT_EQ(parse_duration("0.999999ms"), Time::ns(999'999));
  EXPECT_EQ(parse_duration("0.999us"), Time::ns(999));
  // One more fraction digit than the unit resolves: rejected.
  EXPECT_THROW(parse_duration("0.9999999999s"), ScenarioError);
  EXPECT_THROW(parse_duration("0.9999999ms"), ScenarioError);
  EXPECT_THROW(parse_duration("0.9999us"), ScenarioError);
  EXPECT_THROW(parse_duration("0.9ns"), ScenarioError);
}

// Regression: format_duration used to emit "-5ms", which parse_duration
// rejects — breaking the documented dump→parse round-trip.  Negative
// durations are a contract violation (the scenario schema is unsigned).
TEST(Duration, FormatRejectsNegativeDurations) {
  EXPECT_THROW(format_duration(Time::ns(-1)), ContractViolation);
  EXPECT_THROW(format_duration(Time::ms(-5)), ContractViolation);
  EXPECT_THROW(format_duration(Time::ns(INT64_MIN)), ContractViolation);
}

TEST(Duration, RoundTripsBoundaryValueGrid) {
  const std::int64_t boundaries[] = {0,
                                     1,
                                     999,
                                     1'000,
                                     1'001,
                                     999'999,
                                     1'000'000,
                                     1'000'001,
                                     999'999'999,
                                     1'000'000'000,
                                     1'000'000'001,
                                     INT64_MAX - 1,
                                     INT64_MAX};
  for (const std::int64_t base : boundaries) {
    for (const std::int64_t delta : {-1, 0, 1}) {
      if ((base == INT64_MAX && delta > 0) || base + delta < 0) continue;
      const Time t = Time::ns(base + delta);
      EXPECT_EQ(parse_duration(format_duration(t)), t) << base + delta;
    }
  }
}

// ---------- canonical round-trip ----------

std::string canonical_dump(const Scenario& s) {
  return scenario_to_json(s).dump(2);
}

TEST(ScenarioRoundTrip, DefaultsDumpParseRedumpByteIdentical) {
  for (const StackKind stack : {StackKind::kPolling, StackKind::kMultiCluster,
                                StackKind::kSmac}) {
    const std::string first = canonical_dump(default_scenario(stack));
    const std::string second =
        canonical_dump(parse_scenario_text(first));
    EXPECT_EQ(first, second) << "stack " << to_string(stack);
  }
}

TEST(ScenarioRoundTrip, NonDefaultFieldsSurvive) {
  Scenario s = default_scenario(StackKind::kPolling);
  s.deployment.kind = DeploymentSpec::Kind::kRings;
  s.deployment.rings = 4;
  s.deployment.per_ring = 6;
  s.traffic.rates_bps.assign(24, 15.0);
  s.protocol.oracle_order = 2;
  s.protocol.use_sectors = true;
  s.protocol.routing = RoutingPolicy::kShortestPath;
  s.protocol.recovery.enabled = true;
  s.protocol.faults.kill_at(3, Time::sec(20));
  s.protocol.faults.degrade_link(1, 2, Time::sec(5), Time::sec(9), 0.5);
  s.run.record_perf = false;
  const std::string dumped = canonical_dump(s);
  const Scenario back = parse_scenario_text(dumped);
  EXPECT_EQ(canonical_dump(back), dumped);
  EXPECT_EQ(back.deployment.kind, DeploymentSpec::Kind::kRings);
  EXPECT_EQ(back.traffic.rates_bps.size(), 24u);
  EXPECT_EQ(back.protocol.oracle_order, 2);
  EXPECT_TRUE(back.protocol.recovery.enabled);
  ASSERT_EQ(back.protocol.faults.deaths().size(), 1u);
  EXPECT_EQ(back.protocol.faults.deaths()[0].at, Time::sec(20));
  ASSERT_EQ(back.protocol.faults.degradations().size(), 1u);
  EXPECT_DOUBLE_EQ(back.protocol.faults.degradations()[0].loss, 0.5);
}

TEST(ScenarioRoundTrip, ExplicitDeploymentSurvives) {
  Scenario s = default_scenario(StackKind::kSmac);
  s.deployment.kind = DeploymentSpec::Kind::kExplicit;
  s.deployment.sensors = {{10.0, 0.0}, {20.0, 5.0}, {-30.0, 12.5}};
  s.deployment.head = {1.0, -2.0};
  const std::string dumped = canonical_dump(s);
  const Scenario back = parse_scenario_text(dumped);
  EXPECT_EQ(canonical_dump(back), dumped);
  ASSERT_EQ(back.deployment.sensors.size(), 3u);
  EXPECT_EQ(back.deployment.sensors[2], (Vec2{-30.0, 12.5}));
  EXPECT_EQ(back.deployment.head, (Vec2{1.0, -2.0}));
}

// ---------- strict validation ----------

/// Expect parse failure whose message contains `needle`.
void expect_rejected(const std::string& text, const std::string& needle) {
  try {
    parse_scenario_text(text);
    FAIL() << "expected rejection mentioning: " << needle;
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "got: " << e.what();
  }
}

TEST(ScenarioValidation, UnknownKeysArePathQualified) {
  expect_rejected(R"({"stack": "polling", "oracl_order": 3})",
                  "scenario.oracl_order: unknown key");
  expect_rejected(
      R"({"stack": "polling", "protocol": {"oracl_order": 3}})",
      "scenario.protocol.oracl_order: unknown key");
  expect_rejected(
      R"({"stack": "polling", "protocol": {"radio": {"bandwidth": 1.0}}})",
      "scenario.protocol.radio.bandwidth: unknown key");
}

TEST(ScenarioValidation, WrongTypesArePathQualified) {
  expect_rejected(
      R"({"stack": "polling", "protocol": {"oracle_order": "three"}})",
      "scenario.protocol.oracle_order: expected integer, got string");
  expect_rejected(R"({"stack": "polling", "run": {"record_perf": 1}})",
                  "scenario.run.record_perf: expected boolean, got integer");
  expect_rejected(R"({"stack": "polling", "deployment": []})",
                  "scenario.deployment: expected object, got array");
}

TEST(ScenarioValidation, BadDurationsArePathQualified) {
  expect_rejected(R"({"stack": "polling", "run": {"duration": "40"}})",
                  "scenario.run.duration: bad duration \"40\"");
  expect_rejected(
      R"({"stack": "polling", "protocol": {"turnaround": "20usec"}})",
      "scenario.protocol.turnaround: bad duration");
  expect_rejected(R"({"stack": "polling", "run": {"duration": 40}})",
                  "scenario.run.duration: expected duration string");
}

TEST(ScenarioValidation, SemanticRangesAreChecked) {
  expect_rejected(R"({"stack": "polling", "traffic": {"rate_bps": -1.0}})",
                  "scenario.traffic.rate_bps: must be >= 0");
  expect_rejected(
      R"({"stack": "polling", "protocol": {"oracle_order": 0}})",
      "scenario.protocol.oracle_order: must be >= 1");
  expect_rejected(
      R"({"stack": "polling", "run": {"duration": "5s", "warmup": "9s"}})",
      "scenario.run.warmup: must be shorter than duration");
  expect_rejected(R"({"stack": "smac", "smac": {"duty_cycle": 1.5}})",
                  "scenario.smac.duty_cycle: must be in (0, 1]");
}

TEST(ScenarioValidation, SectionsAreGatedByStack) {
  expect_rejected(R"({"stack": "smac", "protocol": {}})",
                  "scenario.protocol: section not valid for the \"smac\"");
  expect_rejected(R"({"stack": "polling", "smac": {}})",
                  "scenario.smac: section not valid for the \"polling\"");
  expect_rejected(R"({"stack": "polling", "clusters": {}})",
                  "scenario.clusters: section not valid");
}

TEST(ScenarioValidation, DeploymentKeysAreGatedByKind) {
  expect_rejected(
      R"({"stack": "polling",
          "deployment": {"kind": "rings", "side": 100.0}})",
      "scenario.deployment.side: unknown key");
  expect_rejected(
      R"({"stack": "polling", "deployment": {"kind": "grid", "seed": 3}})",
      "scenario.deployment.seed: unknown key");
}

TEST(ScenarioValidation, TrafficCrossChecks) {
  expect_rejected(
      R"({"stack": "polling",
          "traffic": {"rate_bps": 10.0, "rates_bps": [1.0]}})",
      "mutually exclusive");
  expect_rejected(
      R"({"stack": "polling",
          "deployment": {"kind": "rings", "rings": 2, "per_ring": 4},
          "traffic": {"rates_bps": [1.0, 2.0]}})",
      "expected 8 entries");
  expect_rejected(
      R"({"stack": "multi_cluster", "traffic": {"rates_bps": [1.0]}})",
      "scenario.traffic.rates_bps: not supported by the multi_cluster");
}

TEST(ScenarioValidation, FaultPlansAreChecked) {
  expect_rejected(
      R"({"stack": "polling",
          "deployment": {"kind": "rings", "rings": 2, "per_ring": 4},
          "faults": {"deaths": [{"node": 8, "at": "5s"}]}})",
      "scenario.faults.deaths[0].node: sensor id 8 out of range");
  expect_rejected(
      R"({"stack": "polling", "faults": {"deaths": [{"node": 1}]}})",
      "exactly one of \"at\"");
  expect_rejected(
      R"({"stack": "smac",
          "faults": {"degrade_links":
            [{"a": 0, "b": 1, "begin": "1s", "end": "2s", "loss": 1.0}]}})",
      "scenario.faults.degrade_links: not supported by the smac stack");
}

// ---------- JsonParseError line:column (multi-line regression) ----------

TEST(JsonParseErrorPosition, ReportsLineAndColumn) {
  const std::string text = "{\n  \"a\": 1,\n  \"b\": ?\n}\n";
  try {
    obs::parse_json(text);
    FAIL() << "expected JsonParseError";
  } catch (const obs::JsonParseError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_EQ(e.column(), 8u);
    EXPECT_EQ(e.offset(), text.find('?'));
    EXPECT_NE(std::string(e.what()).find("line 3, column 8"),
              std::string::npos)
        << e.what();
  }
}

TEST(JsonParseErrorPosition, FirstLineIsOneBased) {
  try {
    obs::parse_json("[1, }");
    FAIL() << "expected JsonParseError";
  } catch (const obs::JsonParseError& e) {
    EXPECT_EQ(e.line(), 1u);
    EXPECT_EQ(e.column(), 5u);
    EXPECT_EQ(e.offset(), 4u);
  }
}

// ---------- golden equivalence: file-driven == C++-constructed ----------

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

const std::string kScenarioDir =
    std::string(MHP_SOURCE_DIR) + "/examples/scenarios";

TEST(ScenarioGolden, Fig7aFileMatchesHandConstructedRun) {
  // File-driven run.
  const Scenario s =
      parse_scenario_text(read_file(kScenarioDir + "/fig7a.json"));
  const obs::Json from_file = run_scenario(s);

  // The same configuration spelled in C++, as fig7a-style code would.
  Rng rng(42);
  const Deployment dep = deploy_connected_uniform_square(30, 200.0, 60.0, rng);
  ProtocolConfig cfg;
  cfg.oracle_order = 3;
  PollingSimulation sim(dep, cfg, 20.0);
  SimulationReport report = sim.run(Time::sec(40), Time::sec(10));
  report.wall_seconds = 0.0;  // the file sets record_perf: false
  report.events_per_sec = 0.0;
  EXPECT_EQ(from_file.dump(2), obs::to_json(report).dump(2));
}

TEST(ScenarioGolden, SmacScenarioMatchesHandConstructedRun) {
  Scenario s = default_scenario(StackKind::kSmac);
  s.deployment.kind = DeploymentSpec::Kind::kRings;
  s.deployment.rings = 2;
  s.deployment.per_ring = 4;
  s.run.duration = Time::sec(20);
  s.run.warmup = Time::sec(5);
  s.run.record_perf = false;
  const obs::Json from_scenario = run_scenario(s);

  const Deployment dep = deploy_rings(2, 4, 40.0);
  SmacSimulation sim(dep, SmacConfig{}, 20.0);
  SmacReport report = sim.run(Time::sec(20), Time::sec(5));
  report.wall_seconds = 0.0;
  report.events_per_sec = 0.0;
  EXPECT_EQ(from_scenario.dump(2), obs::to_json(report).dump(2));
}

TEST(ScenarioGolden, RepeatedRunsAreByteIdentical) {
  Scenario s = default_scenario(StackKind::kPolling);
  s.deployment.kind = DeploymentSpec::Kind::kRings;
  s.deployment.rings = 2;
  s.deployment.per_ring = 4;
  s.run.duration = Time::sec(15);
  s.run.warmup = Time::sec(5);
  s.run.record_perf = false;
  EXPECT_EQ(run_scenario(s).dump(), run_scenario(s).dump());
}

// ---------- shipped example files ----------

TEST(ScenarioExamples, EveryShippedScenarioParses) {
  std::size_t seen = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(kScenarioDir)) {
    const std::string path = entry.path().string();
    if (entry.path().extension() != ".json") continue;
    if (path.find("campaign") != std::string::npos) continue;
    ++seen;
    EXPECT_NO_THROW(parse_scenario_text(read_file(path))) << path;
  }
  EXPECT_GE(seen, 4u);
}

TEST(ScenarioExamples, ShippedCampaignParsesAndExpands) {
  const Campaign campaign = parse_campaign(
      obs::parse_json(read_file(kScenarioDir + "/campaign_fig7a.json")),
      [](const std::string& base) {
        return read_file(kScenarioDir + "/" + base);
      });
  const auto points = expand_campaign(campaign);
  EXPECT_EQ(points.size(), 6u);  // 3 sensor counts × 2 rates
}

// ---------- campaigns ----------

TEST(CampaignExpansion, CrossProductLastKeyFastest) {
  Campaign campaign;
  campaign.base = scenario_to_json(default_scenario(StackKind::kPolling));
  campaign.sweep.emplace_back(
      "protocol.oracle_order",
      std::vector<obs::Json>{obs::Json(2), obs::Json(3)});
  campaign.sweep.emplace_back(
      "traffic.rate_bps",
      std::vector<obs::Json>{obs::Json(10.0), obs::Json(20.0)});
  const auto points = expand_campaign(campaign);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].key, "protocol.oracle_order=2,traffic.rate_bps=10.0");
  EXPECT_EQ(points[1].key, "protocol.oracle_order=2,traffic.rate_bps=20.0");
  EXPECT_EQ(points[2].key, "protocol.oracle_order=3,traffic.rate_bps=10.0");
  EXPECT_EQ(points[3].key, "protocol.oracle_order=3,traffic.rate_bps=20.0");
  EXPECT_EQ(points[1].doc.at("protocol").at("oracle_order").as_int(), 2);
  EXPECT_DOUBLE_EQ(points[1].doc.at("traffic").at("rate_bps").as_double(),
                   20.0);
}

TEST(CampaignExpansion, EmptySweepIsOneBasePoint) {
  Campaign campaign;
  campaign.base = scenario_to_json(default_scenario(StackKind::kPolling));
  const auto points = expand_campaign(campaign);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].key, "base");
}

TEST(CampaignPaths, SetByPathRejectsUnknownPaths) {
  obs::Json doc = scenario_to_json(default_scenario(StackKind::kPolling));
  set_by_path(doc, "protocol.oracle_order", obs::Json(2));
  EXPECT_EQ(doc.at("protocol").at("oracle_order").as_int(), 2);
  EXPECT_THROW(set_by_path(doc, "protocol.oracl_order", obs::Json(2)),
               ScenarioError);
  EXPECT_THROW(set_by_path(doc, "nope.deep.path", obs::Json(1)),
               ScenarioError);
}

TEST(CampaignPaths, ParseCampaignFailsFastOnBadSweepPath) {
  const obs::Json doc = obs::parse_json(
      R"({"base": {"stack": "polling"},
          "sweep": {"protocol.oracl_order": [2]}})");
  EXPECT_THROW(parse_campaign(doc, nullptr), ScenarioError);
}

/// Small, fast base scenario for campaign-execution tests.
obs::Json quick_base() {
  Scenario s = default_scenario(StackKind::kPolling);
  s.deployment.kind = DeploymentSpec::Kind::kRings;
  s.deployment.rings = 2;
  s.deployment.per_ring = 4;
  s.run.duration = Time::sec(12);
  s.run.warmup = Time::sec(2);
  s.run.record_perf = false;
  return scenario_to_json(s);
}

std::size_t count_lines(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line))
    if (!line.empty()) ++n;
  return n;
}

TEST(CampaignRun, IsolatesFailuresAndResumesFromManifest) {
  Campaign campaign;
  campaign.name = "resume_test";
  campaign.base = quick_base();
  // -1.0 fails semantic validation at the point level: the campaign must
  // record the failure and still complete the healthy points.
  campaign.sweep.emplace_back(
      "traffic.rate_bps",
      std::vector<obs::Json>{obs::Json(20.0), obs::Json(-1.0),
                             obs::Json(10.0)});

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("mhp_campaign_test_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);

  const CampaignResult first = run_campaign(campaign, dir, 2, nullptr);
  EXPECT_EQ(first.total, 3u);
  EXPECT_EQ(first.ok, 2u);
  EXPECT_EQ(first.failed, 1u);
  EXPECT_EQ(first.skipped, 0u);
  EXPECT_EQ(count_lines(dir + "/results.jsonl"), 2u);
  EXPECT_EQ(count_lines(dir + "/manifest.jsonl"), 3u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/summary.json"));

  // Re-run: completed points are skipped, the failed one retried (and it
  // fails again), no duplicate results appended.
  const CampaignResult second = run_campaign(campaign, dir, 2, nullptr);
  EXPECT_EQ(second.total, 3u);
  EXPECT_EQ(second.skipped, 2u);
  EXPECT_EQ(second.ok, 0u);
  EXPECT_EQ(second.failed, 1u);
  EXPECT_EQ(count_lines(dir + "/results.jsonl"), 2u);

  // The failure is on record with its path-qualified error.
  const std::string manifest = read_file(dir + "/manifest.jsonl");
  EXPECT_NE(manifest.find("scenario.traffic.rate_bps: must be >= 0"),
            std::string::npos);

  // Summary rolls up the ok points on record.
  const obs::Json summary =
      obs::parse_json(read_file(dir + "/summary.json"));
  EXPECT_EQ(summary.at("kind").as_string(), "campaign_summary");
  EXPECT_EQ(summary.at("report").at("points").at("ok").as_int(), 2);
  EXPECT_EQ(summary.at("report").at("points").at("failed").as_int(), 1);
  EXPECT_EQ(summary.at("report")
                .at("aggregates")
                .at("delivery_ratio")
                .at("count")
                .as_int(),
            2);

  std::filesystem::remove_all(dir);
}

TEST(CampaignRun, TornManifestTailIsIgnoredAndPointReruns) {
  Campaign campaign;
  campaign.name = "torn_tail";
  campaign.base = quick_base();

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("mhp_campaign_torn_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  // Simulate a kill mid-append: a truncated JSON line must not wedge the
  // resume logic — the point simply runs again.
  std::ofstream(dir + "/manifest.jsonl") << "{\"key\": \"base\", \"sta";

  const CampaignResult r = run_campaign(campaign, dir, 1, nullptr);
  EXPECT_EQ(r.total, 1u);
  EXPECT_EQ(r.ok, 1u);
  EXPECT_EQ(r.skipped, 0u);
  std::filesystem::remove_all(dir);
}

TEST(CampaignRun, StopFlagInterruptsCleanlyAndResumeCompletes) {
  Campaign campaign;
  campaign.name = "interrupt";
  campaign.base = quick_base();
  campaign.sweep.emplace_back(
      "traffic.rate_bps",
      std::vector<obs::Json>{obs::Json(10.0), obs::Json(20.0),
                             obs::Json(30.0)});

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("mhp_campaign_stop_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);

  // A stop flag raised before dispatch (the SIGINT path, taken to its
  // extreme): every point is abandoned before it runs, and nothing is
  // recorded — the manifest stays honest for the resume.
  std::atomic<bool> stop{true};
  const CampaignResult first = run_campaign(campaign, dir, 2, nullptr, &stop);
  EXPECT_EQ(first.total, 3u);
  EXPECT_EQ(first.interrupted, 3u);
  EXPECT_EQ(first.ok, 0u);
  EXPECT_EQ(first.failed, 0u);
  EXPECT_EQ(count_lines(dir + "/results.jsonl"), 0u);
  EXPECT_EQ(count_lines(dir + "/manifest.jsonl"), 0u);

  // Re-run without the flag: the interrupted points were never marked
  // done, so the whole campaign completes.
  const CampaignResult second = run_campaign(campaign, dir, 2, nullptr);
  EXPECT_EQ(second.ok, 3u);
  EXPECT_EQ(second.skipped, 0u);
  EXPECT_EQ(second.interrupted, 0u);
  EXPECT_EQ(count_lines(dir + "/results.jsonl"), 3u);
  std::filesystem::remove_all(dir);
}

TEST(CampaignRun, PointWallMsGatedByRecordPerf) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("mhp_campaign_wall_" + std::to_string(::getpid())))
          .string();

  // record_perf false (the quick_base default): the wall-clock field is
  // recorded but zeroed, keeping results byte-deterministic.
  Campaign off;
  off.name = "wall_off";
  off.base = quick_base();
  std::filesystem::remove_all(dir);
  ASSERT_EQ(run_campaign(off, dir, 1, nullptr).ok, 1u);
  {
    std::ifstream in(dir + "/results.jsonl");
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    const obs::Json entry = obs::parse_json(line);
    EXPECT_EQ(entry.at("point_wall_ms").as_double(), 0.0);
  }
  // The summary always carries the latency roll-up block.
  const obs::Json summary =
      obs::parse_json(read_file(dir + "/summary.json"));
  const obs::Json& wall = summary.at("report").at("point_wall_ms");
  EXPECT_EQ(wall.at("count").as_int(), 1);
  EXPECT_EQ(wall.at("p50_ms").as_double(), 0.0);
  EXPECT_EQ(wall.at("p99_ms").as_double(), 0.0);

  // record_perf true: a real (positive) per-point wall time.
  Campaign on;
  on.name = "wall_on";
  on.base = quick_base();
  set_by_path(on.base, "run.record_perf", obs::Json(true));
  std::filesystem::remove_all(dir);
  ASSERT_EQ(run_campaign(on, dir, 1, nullptr).ok, 1u);
  {
    std::ifstream in(dir + "/results.jsonl");
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    const obs::Json entry = obs::parse_json(line);
    EXPECT_GT(entry.at("point_wall_ms").as_double(), 0.0);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mhp::scenario
