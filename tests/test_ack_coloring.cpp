// Ack-collection planning (§V-F) and inter-cluster interference removal
// (§V-G).
#include <gtest/gtest.h>

#include <set>

#include "core/ack_collection.hpp"
#include "core/coloring.hpp"
#include "net/deployment.hpp"
#include "util/rng.hpp"

namespace mhp {
namespace {

// ---------- Ack collection ----------

/// Chain 2→1→0→head plus a lone first-level sensor 3.
ClusterTopology chain_plus_leaf() {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  return ClusterTopology(std::move(g), {true, false, false, true});
}

TEST(AckPlan, CoverUsesLongPathForChain) {
  const auto topo = chain_plus_leaf();
  const RelayPlan plan = RelayPlan::balanced(topo, {1, 1, 1, 1});
  const AckPlan ack = plan_ack_collection(topo, plan, 0);
  EXPECT_TRUE(ack.covers_all);
  // The chain path 2→1→0→head covers sensors 0,1,2; sensor 3 needs its
  // own: exactly two polls, total 4 hops.
  EXPECT_EQ(ack.poll_paths.size(), 2u);
  EXPECT_DOUBLE_EQ(ack.total_hops, 4.0);
}

TEST(AckPlan, BeatsOrMatchesPollEveryone) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 6 + rng.below(20);
    const Deployment dep =
        deploy_connected_uniform_square(n, 200.0, 60.0, rng);
    const ClusterTopology topo = disc_topology(dep, 60.0);
    std::vector<std::int64_t> demand(n, 1);
    const RelayPlan plan = RelayPlan::balanced(topo, demand);
    const AckPlan cover = plan_ack_collection(topo, plan, 0);
    const AckPlan naive = ack_poll_everyone(topo, plan, 0);
    ASSERT_TRUE(cover.covers_all);
    EXPECT_LE(cover.total_hops, naive.total_hops);
    EXPECT_LE(cover.poll_paths.size(), naive.poll_paths.size());
  }
}

TEST(AckPlan, SectorSubsetsCovered) {
  const auto topo = chain_plus_leaf();
  const RelayPlan plan = RelayPlan::balanced(topo, {1, 1, 1, 1});
  const AckPlan ack = plan_ack_collection(topo, plan, 0, {0, 1, 2});
  EXPECT_TRUE(ack.covers_all);
  EXPECT_EQ(ack.poll_paths.size(), 1u);  // the chain covers all three
}

TEST(AckPlan, ZeroDemandSensorsGetFallbackPaths) {
  const auto topo = chain_plus_leaf();
  const RelayPlan plan = RelayPlan::balanced(topo, {0, 0, 0, 0});
  const AckPlan ack = plan_ack_collection(topo, plan, 0);
  EXPECT_TRUE(ack.covers_all);
}

TEST(AckPlan, CoverStepWithExplicitCandidates) {
  const AckPlan ack = plan_ack_cover(
      {5, 6, 7}, {{5, 6, 9}, {6, 9}, {7, 9}});
  EXPECT_TRUE(ack.covers_all);
  EXPECT_EQ(ack.poll_paths.size(), 2u);  // {5,6,9} + {7,9}
}

// ---------- Coloring ----------

Graph grid_graph(std::size_t w, std::size_t h) {
  Graph g(w * h);
  for (std::size_t y = 0; y < h; ++y)
    for (std::size_t x = 0; x < w; ++x) {
      const auto v = static_cast<NodeId>(y * w + x);
      if (x + 1 < w) g.add_edge(v, v + 1);
      if (y + 1 < h) g.add_edge(v, static_cast<NodeId>(v + w));
    }
  return g;
}

TEST(Coloring, SixColorOnPlanarGraphs) {
  const Graph grid = grid_graph(6, 6);
  const auto colors = six_color_planar(grid);
  EXPECT_TRUE(proper_coloring(grid, colors));
  EXPECT_LE(num_colors(colors), 6);

  // A ring (cycle) needs 2 or 3 colours.
  Graph ring(7);
  for (NodeId i = 0; i < 7; ++i)
    ring.add_edge(i, static_cast<NodeId>((i + 1) % 7));
  const auto rc = six_color_planar(ring);
  EXPECT_TRUE(proper_coloring(ring, rc));
  EXPECT_LE(num_colors(rc), 3);
}

TEST(Coloring, TreeUsesTwoColors) {
  Graph tree(7);
  for (NodeId i = 1; i < 7; ++i) tree.add_edge(i, (i - 1) / 2);
  const auto colors = six_color_planar(tree);
  EXPECT_TRUE(proper_coloring(tree, colors));
  EXPECT_LE(num_colors(colors), 2);
}

TEST(Coloring, GreedyIsProper) {
  const Graph grid = grid_graph(5, 4);
  const auto colors = greedy_color(grid);
  EXPECT_TRUE(proper_coloring(grid, colors));
}

TEST(Coloring, RandomPlanarLikeClusterGraphs) {
  // Cluster adjacency from a deployment: heads on a grid, clusters
  // adjacent when within range — planar-ish; 6-colouring must hold and be
  // proper.  (The theorem guarantees ≤6 for planar inputs; we assert
  // properness always and ≤6 for these geometric graphs.)
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 10 + rng.below(20);
    Graph g(n);
    std::vector<Vec2> pos(n);
    for (auto& p : pos) p = {rng.uniform(0, 100), rng.uniform(0, 100)};
    // Gabriel-like graph: connect near neighbors (planar for our use).
    for (NodeId a = 0; a < n; ++a)
      for (NodeId b = a + 1; b < n; ++b)
        if (distance(pos[a], pos[b]) < 25.0) g.add_edge(a, b);
    const auto colors = six_color_planar(g);
    EXPECT_TRUE(proper_coloring(g, colors));
  }
}

TEST(Coloring, EmptyAndSingleton) {
  Graph none(0);
  EXPECT_TRUE(six_color_planar(none).empty());
  Graph one(1);
  const auto colors = six_color_planar(one);
  EXPECT_EQ(num_colors(colors), 1);
}

TEST(Coloring, ProperRejectsBadColoring) {
  Graph g(2);
  g.add_edge(0, 1);
  EXPECT_FALSE(proper_coloring(g, {0, 0}));
  EXPECT_FALSE(proper_coloring(g, {-1, 0}));
  EXPECT_TRUE(proper_coloring(g, {0, 1}));
}

// ---------- Token rotation ----------

TEST(TokenRotation, RoundRobin) {
  TokenRotation token(3);
  EXPECT_EQ(token.holder(0), 0u);
  EXPECT_EQ(token.holder(4), 1u);
  EXPECT_TRUE(token.may_transmit(2, 5));
  EXPECT_FALSE(token.may_transmit(0, 5));
  // Exactly one holder per round.
  for (std::uint64_t round = 0; round < 9; ++round) {
    int holders = 0;
    for (std::size_t c = 0; c < 3; ++c)
      if (token.may_transmit(c, round)) ++holders;
    EXPECT_EQ(holders, 1);
  }
}

}  // namespace
}  // namespace mhp
