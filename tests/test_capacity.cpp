// Capacity model (§VI-A): the analytic duty prediction must track the
// event-simulated duty cycle and reproduce Fig 7(a)'s saturation wall.
#include <gtest/gtest.h>

#include "core/capacity.hpp"
#include "core/polling_simulation.hpp"
#include "net/deployment.hpp"
#include "util/rng.hpp"

namespace mhp {
namespace {

TEST(Capacity, PredictionTracksSimulation) {
  Rng rng(41);
  const Deployment dep = deploy_connected_uniform_square(20, 200.0, 60.0, rng);
  ProtocolConfig cfg;

  for (double rate : {20.0, 60.0}) {
    PollingSimulation sim(dep, cfg, rate);
    const auto rep = sim.run(Time::sec(40), Time::sec(10));

    const auto est = estimate_capacity(sim.topology(), sim.relay_plan(),
                                       sim.oracle(), rate, cfg);
    ASSERT_FALSE(est.saturated);
    // Active fraction ≈ duty fraction (sensors sleep outside the duty
    // cycle).  Allow 40% relative slack: the simulation adds re-poll and
    // wake-margin overheads the model prices approximately.
    EXPECT_NEAR(est.duty_fraction, rep.mean_active_fraction,
                0.4 * rep.mean_active_fraction)
        << "rate " << rate;
  }
}

TEST(Capacity, DutyGrowsWithRateAndSize) {
  ProtocolConfig cfg;
  Rng rng(43);
  const Deployment small = deploy_connected_uniform_square(10, 200.0, 60.0, rng);
  const Deployment large = deploy_connected_uniform_square(40, 200.0, 60.0, rng);

  auto duty = [&](const Deployment& dep, double rate) {
    PollingSimulation sim(dep, cfg, rate);  // reuse its measured setup
    return estimate_capacity(sim.topology(), sim.relay_plan(), sim.oracle(),
                             rate, cfg)
        .duty_fraction;
  };
  EXPECT_LT(duty(small, 20.0), duty(small, 80.0));
  EXPECT_LT(duty(small, 40.0), duty(large, 40.0));
}

TEST(Capacity, SaturationDetectedAtAbsurdRate) {
  Rng rng(44);
  const Deployment dep = deploy_connected_uniform_square(30, 200.0, 60.0, rng);
  ProtocolConfig cfg;
  PollingSimulation sim(dep, cfg, 20.0);
  const auto est = estimate_capacity(sim.topology(), sim.relay_plan(),
                                     sim.oracle(), 5000.0, cfg);
  EXPECT_TRUE(est.saturated);
  EXPECT_GT(est.duty_fraction, 1.0);
}

TEST(Capacity, MaxClusterSizeShrinksWithRate) {
  ProtocolConfig cfg;
  const std::size_t slow = max_cluster_size(20.0, cfg, 0.99, 120);
  const std::size_t fast = max_cluster_size(80.0, cfg, 0.99, 120);
  EXPECT_GT(slow, 0u);
  EXPECT_GT(fast, 0u);
  EXPECT_GE(slow, fast);  // Fig 7(a)'s threshold moves left as rate grows
}

}  // namespace
}  // namespace mhp
