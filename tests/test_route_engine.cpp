// RoutingEngine determinism contract: warm-start probes, warm hints and
// parallel per-cluster solves must all produce byte-identical results to
// the cold single-threaded solver (and hence to the legacy free
// functions, which are now shims over an engine).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/route_repair.hpp"
#include "core/routing.hpp"
#include "exp/fig_common.hpp"
#include "flow/min_max_load.hpp"
#include "net/deployment.hpp"
#include "route/routing_engine.hpp"
#include "scenario/run_scenario.hpp"
#include "scenario/scenario.hpp"

namespace mhp {
namespace {

using route::ClusterRouteJob;
using route::RoutingEngine;
using route::SolveKind;
using route::SolvePolicy;

// Full-fidelity serialization of a solver result: any divergence in
// paths, per-path units or loads shows up as a string mismatch.
std::string fingerprint(const MinMaxLoadResult& r) {
  std::ostringstream out;
  out << "feasible=" << r.feasible << " max_load=" << r.max_load << "\n";
  for (std::size_t s = 0; s < r.paths.size(); ++s) {
    out << s << " load=" << r.load[s] << ":";
    for (const UnitPath& p : r.paths[s]) {
      out << " [";
      for (NodeId hop : p.hops) out << hop << ",";
      out << "]x" << p.units;
    }
    out << "\n";
  }
  return out.str();
}

std::string fingerprint(const RelayPlan& plan) {
  std::ostringstream out;
  out << "max_load=" << plan.max_load() << "\n";
  for (std::size_t s = 0; s < plan.num_sensors(); ++s) {
    out << s << " load=" << plan.load(s) << ":";
    for (const UnitPath& p : plan.paths(s)) {
      out << " [";
      for (NodeId hop : p.hops) out << hop << ",";
      out << "]x" << p.units;
    }
    out << "\n";
  }
  return out.str();
}

ClusterTopology eval_topology(std::size_t sensors, std::uint64_t seed) {
  return disc_topology(exp::eval_deployment(sensors, seed),
                       exp::kSensorRange);
}

// ---------- warm start vs cold solve ----------

TEST(RouteEngine, WarmMatchesColdAndLegacyOnFixedDeployments) {
  for (std::size_t sensors : {14u, 40u, 120u}) {
    for (std::uint64_t seed : {1u, 2u}) {
      const ClusterTopology topo = eval_topology(sensors, seed);
      const std::vector<std::int64_t> demand(sensors, 1);

      RoutingEngine warm(SolvePolicy{MaxFlowAlgo::kDinic, true});
      RoutingEngine cold(SolvePolicy{MaxFlowAlgo::kDinic, false});
      const std::string warm_fp =
          fingerprint(warm.solve_balanced(topo, demand));
      EXPECT_EQ(warm_fp, fingerprint(cold.solve_balanced(topo, demand)))
          << "sensors=" << sensors << " seed=" << seed;
      EXPECT_EQ(warm_fp, fingerprint(solve_min_max_load(topo, demand)))
          << "sensors=" << sensors << " seed=" << seed;
    }
  }
}

TEST(RouteEngine, WarmMatchesColdWithWeightsAndEdmondsKarp) {
  const ClusterTopology topo = eval_topology(40, 3);
  std::vector<std::int64_t> demand(40, 1);
  std::vector<std::int64_t> weight(40);
  for (std::size_t s = 0; s < weight.size(); ++s) weight[s] = 1 + s % 3;

  for (MaxFlowAlgo algo : {MaxFlowAlgo::kDinic, MaxFlowAlgo::kEdmondsKarp}) {
    RoutingEngine warm(SolvePolicy{algo, true});
    RoutingEngine cold(SolvePolicy{algo, false});
    EXPECT_EQ(fingerprint(warm.solve_balanced(topo, demand, weight)),
              fingerprint(cold.solve_balanced(topo, demand, weight)));
    EXPECT_EQ(fingerprint(warm.solve_balanced(topo, demand, weight)),
              fingerprint(solve_min_max_load(topo, demand, weight, algo)));
  }
}

TEST(RouteEngine, ReusedEngineMatchesFreshEnginePerSolve) {
  RoutingEngine reused;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const ClusterTopology topo = eval_topology(30, seed);
    const std::vector<std::int64_t> demand(30, 1);
    RoutingEngine fresh;
    EXPECT_EQ(fingerprint(reused.solve_balanced(topo, demand)),
              fingerprint(fresh.solve_balanced(topo, demand)))
        << "seed=" << seed;
    EXPECT_EQ(fingerprint(reused.solve_shortest(topo, demand)),
              fingerprint(fresh.solve_shortest(topo, demand)))
        << "seed=" << seed;
  }
}

TEST(RouteEngine, SearchStatsBoundDeltaStar) {
  const ClusterTopology topo = eval_topology(60, 5);
  const std::vector<std::int64_t> demand(60, 1);
  RoutingEngine engine;
  const MinMaxLoadResult result = engine.solve_balanced(topo, demand);
  ASSERT_TRUE(result.feasible);
  const route::SolveStats& stats = engine.last_stats();
  EXPECT_GE(stats.probes, 1);
  EXPECT_GE(stats.cold_solves, 1);
  EXPECT_GE(stats.delta_lower_bound, 1);
  EXPECT_LE(stats.delta_lower_bound, stats.delta_star);
  EXPECT_EQ(stats.delta_star, result.max_load);
}

// ---------- warm hints across fault → replan ----------

// Pick a victim that actually carries relayed load so the repair is a
// real re-solve, not a no-op.
NodeId loaded_victim(const RelayPlan& plan) {
  for (NodeId s = 0; s < plan.num_sensors(); ++s)
    if (plan.load(s) > 1) return s;
  return 0;
}

TEST(RouteEngine, WarmHintedReplanMatchesColdReplan) {
  const ClusterTopology topo = eval_topology(40, 7);
  const std::vector<std::int64_t> demand(40, 1);
  const RelayPlan plan = RelayPlan::balanced(topo, demand);
  const NodeId victim = loaded_victim(plan);

  // Engine + previous-plan hint (the production path) vs the plain
  // hint-free repair: identical plans, loads and orphan sets.
  RoutingEngine engine;
  engine.set_warm_hint(&plan.all_paths());
  const RouteRepair hinted = repair_routes(
      topo, {victim}, demand, RoutingPolicy::kBalancedMaxFlow, &engine,
      &plan);
  EXPECT_GT(engine.last_stats().hint_units, 0)
      << "hint did not seed any flow; victim=" << victim;
  const RouteRepair cold =
      repair_routes(topo, {victim}, demand, RoutingPolicy::kBalancedMaxFlow);
  EXPECT_EQ(fingerprint(hinted.plan), fingerprint(cold.plan));
  EXPECT_EQ(hinted.orphaned, cold.orphaned);
}

TEST(RouteEngine, ChainedReplansMatchColdAcrossDeathSequence) {
  const ClusterTopology topo = eval_topology(40, 9);
  const std::vector<std::int64_t> demand(40, 1);
  const RelayPlan plan = RelayPlan::balanced(topo, demand);

  // Two successive deaths: the second replan's hint is the first repair's
  // plan, mirroring PollingSimulation's repair_plan_ chaining.
  const NodeId first = loaded_victim(plan);
  RoutingEngine engine;
  engine.set_warm_hint(&plan.all_paths());
  RouteRepair step1 = repair_routes(topo, {first}, demand,
                                    RoutingPolicy::kBalancedMaxFlow, &engine,
                                    &plan);
  const NodeId second = loaded_victim(step1.plan) != first
                            ? loaded_victim(step1.plan)
                            : (first + 1) % 40;
  const std::vector<NodeId> dead = {first, second};
  engine.set_warm_hint(&step1.plan.all_paths());
  const RouteRepair hinted = repair_routes(
      topo, dead, demand, RoutingPolicy::kBalancedMaxFlow, &engine,
      &step1.plan);
  const RouteRepair cold =
      repair_routes(topo, dead, demand, RoutingPolicy::kBalancedMaxFlow);
  EXPECT_EQ(fingerprint(hinted.plan), fingerprint(cold.plan));
  EXPECT_EQ(hinted.orphaned, cold.orphaned);
}

// ---------- parallel per-cluster solves ----------

TEST(RouteEngineParallel, SolveClustersDeterministicAcrossWorkers) {
  std::vector<ClusterTopology> topos;
  std::vector<ClusterRouteJob> jobs;
  for (std::uint64_t seed = 0; seed < 6; ++seed)
    topos.push_back(eval_topology(20 + 5 * seed, seed));
  for (std::size_t c = 0; c < topos.size(); ++c) {
    ClusterRouteJob job;
    job.topo = &topos[c];
    job.demand.assign(topos[c].num_sensors(), 1);
    if (c == 4) {  // one weighted job
      job.weight.assign(topos[c].num_sensors(), 1);
      job.weight[0] = 3;
    }
    if (c == 5) job.kind = SolveKind::kShortestPath;  // one baseline job
    jobs.push_back(std::move(job));
  }

  const std::vector<MinMaxLoadResult> serial = route::solve_clusters(jobs, 1);
  ASSERT_EQ(serial.size(), jobs.size());
  for (std::size_t workers : {8u, 0u}) {  // 0 = hardware concurrency
    const std::vector<MinMaxLoadResult> parallel =
        route::solve_clusters(jobs, workers);
    ASSERT_EQ(parallel.size(), jobs.size());
    for (std::size_t c = 0; c < jobs.size(); ++c)
      EXPECT_EQ(fingerprint(serial[c]), fingerprint(parallel[c]))
          << "workers=" << workers << " cluster=" << c;
  }

  // And each slot matches an independent single-problem engine solve.
  for (std::size_t c = 0; c < jobs.size(); ++c) {
    RoutingEngine engine;
    EXPECT_EQ(fingerprint(serial[c]),
              fingerprint(engine.solve(jobs[c].kind, *jobs[c].topo,
                                       jobs[c].demand, jobs[c].weight)))
        << "cluster=" << c;
  }
}

TEST(RouteEngineParallel, ScenarioReportByteIdenticalAcrossWorkers) {
  scenario::Scenario s =
      scenario::default_scenario(scenario::StackKind::kMultiCluster);
  s.deployment.n_sensors = 12;
  s.run.duration = Time::sec(10);
  s.run.warmup = Time::sec(2);
  s.run.record_perf = false;

  s.route_workers = 1;
  const std::string serial = scenario::run_scenario(s).dump();
  s.route_workers = 8;
  EXPECT_EQ(serial, scenario::run_scenario(s).dump());
  s.route_workers = 0;  // hardware concurrency
  EXPECT_EQ(serial, scenario::run_scenario(s).dump());
}

}  // namespace
}  // namespace mhp
