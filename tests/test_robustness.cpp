// Robustness and property tests across modules: event-queue fuzz against
// a reference model, scheduler behaviour under heavy loss, protocol
// configuration matrix, and energy-weighted routing.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/greedy_scheduler.hpp"
#include "core/polling_simulation.hpp"
#include "core/routing.hpp"
#include "flow/min_max_load.hpp"
#include "net/deployment.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace mhp {
namespace {

// ---------- Event queue fuzz vs reference model ----------

class EventQueueFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EventQueueFuzz, MatchesReferenceModel) {
  Rng rng(9200 + static_cast<std::uint64_t>(GetParam()));
  EventQueue q;
  // Reference: (time, seq) → id, mirroring the queue's tie-break order.
  std::map<std::pair<std::int64_t, std::uint64_t>, EventId> model;
  std::map<EventId, std::pair<std::int64_t, std::uint64_t>> by_id;
  std::uint64_t seq = 0;

  for (int step = 0; step < 2000; ++step) {
    const double dice = rng.uniform();
    if (dice < 0.55) {
      const auto t = static_cast<std::int64_t>(rng.below(1000));
      const EventId id = q.push(Time::ns(t), [] {});
      model[{t, seq}] = id;
      by_id[id] = {t, seq};
      ++seq;
    } else if (dice < 0.75 && !by_id.empty()) {
      // Cancel a random known id (possibly already popped).
      auto it = by_id.begin();
      std::advance(it, static_cast<long>(rng.below(by_id.size())));
      const bool in_model = model.contains(it->second);
      EXPECT_EQ(q.cancel(it->first), in_model);
      model.erase(it->second);
      by_id.erase(it);
    } else {
      const auto popped = q.pop();
      if (model.empty()) {
        EXPECT_FALSE(popped.has_value());
      } else {
        ASSERT_TRUE(popped.has_value());
        const auto expect = model.begin();
        EXPECT_EQ(popped->id, expect->second);
        EXPECT_EQ(popped->when.nanos(), expect->first.first);
        by_id.erase(expect->second);
        model.erase(expect);
      }
    }
    EXPECT_EQ(q.size(), model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz, ::testing::Range(0, 8));

// The poll-timeout retry pattern: arm a timer, cancel it when the reply
// arrives, arm the next.  The previous lazy-cancel kernel left one dead
// heap entry per cancel, so memory grew with the cancel count; the arena
// kernel must stay bounded by the peak number of *live* events no matter
// how many events churn through.
TEST(EventQueueMemory, CancelHeavyWorkloadStaysBounded) {
  EventQueue q;
  constexpr std::size_t kTimers = 32;
  constexpr int kRounds = 100'000;
  std::vector<EventId> timers;
  timers.reserve(kTimers);
  for (std::size_t i = 0; i < kTimers; ++i)
    timers.push_back(q.push(Time::ns(static_cast<std::int64_t>(i)), [] {}));
  Rng rng(4242);
  for (int round = 1; round <= kRounds; ++round) {
    const std::size_t k = rng.below(kTimers);
    ASSERT_TRUE(q.cancel(timers[k]));
    timers[k] =
        q.push(Time::ns(static_cast<std::int64_t>(round * 7 % 1000)), [] {});
  }
  EXPECT_EQ(q.size(), kTimers);
  // One slot per live timer; the free list never needs more than one
  // spare (the slot released by the cancel is reused by the next push).
  EXPECT_LE(q.arena_slots(), kTimers + 1);
  // Drain in order to prove the heap is intact after the churn.
  Time last = Time::zero();
  std::size_t drained = 0;
  while (auto ev = q.pop()) {
    EXPECT_GE(ev->when, last);
    last = ev->when;
    ++drained;
  }
  EXPECT_EQ(drained, kTimers);
}

// ---------- Greedy scheduler under heavy loss ----------

TEST(GreedyLoss, EveryExecutedSlotIsCompatible) {
  // Under 50% per-hop loss the schedule keeps re-polling; every executed
  // slot must still be oracle-compatible and the run must finish.
  Rng rng(77);
  const Deployment dep = deploy_connected_uniform_square(10, 150.0, 60.0, rng);
  const ClusterTopology topo = disc_topology(dep, 60.0);
  const auto routing =
      solve_min_max_load(topo, std::vector<std::int64_t>(10, 1));
  ASSERT_TRUE(routing.feasible);
  ExplicitOracle oracle(3);
  std::vector<std::vector<NodeId>> paths;
  for (NodeId s = 0; s < 10; ++s) paths.push_back(routing.paths[s][0].hops);
  const auto txs = transmissions_of_paths(paths);
  for (std::size_t i = 0; i < txs.size(); ++i)
    for (std::size_t j = i + 1; j < txs.size(); ++j)
      oracle.allow_pair(txs[i], txs[j]);

  Rng loss_rng(78);
  const auto result =
      run_offline(oracle, paths, bernoulli_loss(0.5, loss_rng));
  ASSERT_TRUE(result.all_delivered);
  EXPECT_GT(result.reactivations, 0u);
  for (const auto& slot : result.schedule.slots) {
    std::vector<Tx> group;
    for (const auto& s : slot) group.push_back(s.tx);
    EXPECT_TRUE(oracle.compatible(group));
  }
  // Loss inflates the schedule beyond the loss-free length.
  const auto clean = run_offline(oracle, paths);
  EXPECT_GT(result.slots, clean.slots);
}

TEST(GreedyLoss, PathologicalLossHitsMaxSlotsGuard) {
  ExplicitOracle oracle(2);
  std::vector<std::vector<NodeId>> paths = {{0, 9}};
  const auto never = [](const ScheduledTx&, std::size_t) { return false; };
  const auto result = run_offline(oracle, paths, never, /*max_slots=*/50);
  EXPECT_FALSE(result.all_delivered);
  EXPECT_EQ(result.slots, 50u);
}

// ---------- Protocol configuration matrix ----------

struct MatrixParam {
  int oracle_order;
  bool sectors;
  bool rotate;
};

class ProtocolMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ProtocolMatrix, DeliversAtModestLoad) {
  const auto p = GetParam();
  ProtocolConfig cfg;
  cfg.oracle_order = p.oracle_order;
  cfg.use_sectors = p.sectors;
  cfg.rotate_paths = p.rotate;
  Rng rng(31);
  const Deployment dep = deploy_connected_uniform_square(14, 160.0, 60.0, rng);
  PollingSimulation sim(dep, cfg, 20.0);
  const auto rep = sim.run(Time::sec(30), Time::sec(5));
  EXPECT_GE(rep.delivery_ratio, 0.9)
      << "order=" << p.oracle_order << " sectors=" << p.sectors
      << " rotate=" << p.rotate;
  EXPECT_LT(rep.mean_active_fraction, 0.9);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ProtocolMatrix,
    ::testing::Values(MatrixParam{1, false, false},
                      MatrixParam{2, false, true},
                      MatrixParam{3, false, true},
                      MatrixParam{2, true, false},
                      MatrixParam{3, true, false}));

TEST(ProtocolStress, HeavyRandomLossStillTerminates) {
  ProtocolConfig cfg;
  cfg.random_loss = 0.6;
  cfg.max_retries = 4;
  Rng rng(32);
  const Deployment dep = deploy_connected_uniform_square(10, 150.0, 60.0, rng);
  PollingSimulation sim(dep, cfg, 20.0);
  const auto rep = sim.run(Time::sec(30), Time::sec(5));
  // Most packets die, but the protocol never wedges: cycles keep running
  // and the head keeps abandoning hopeless requests.
  EXPECT_GT(sim.head().cycles_completed(), 15u);
  EXPECT_GT(rep.packets_lost + rep.packets_delivered, 0u);
}

TEST(ProtocolStress, LargeWakeJitterStillWorks) {
  ProtocolConfig cfg;
  cfg.wake_jitter = Time::us(900);  // close to the 1 ms wake margin
  Rng rng(33);
  const Deployment dep = deploy_connected_uniform_square(12, 160.0, 60.0, rng);
  PollingSimulation sim(dep, cfg, 20.0);
  const auto rep = sim.run(Time::sec(30), Time::sec(5));
  EXPECT_GE(rep.delivery_ratio, 0.9);
}

TEST(ProtocolStress, ShortCyclePeriod) {
  ProtocolConfig cfg;
  cfg.cycle_period = Time::ms(200);
  Rng rng(34);
  const Deployment dep = deploy_connected_uniform_square(8, 140.0, 60.0, rng);
  PollingSimulation sim(dep, cfg, 10.0);
  const auto rep = sim.run(Time::sec(30), Time::sec(5));
  EXPECT_GE(rep.delivery_ratio, 0.9);
  EXPECT_LT(rep.mean_latency_s, 0.5);
}

// ---------- Energy-weighted routing ----------

TEST(WeightedRouting, StrongSensorsCarryMore) {
  // Diamond: sensor 2 relays through gateway 0 or 1.  With gateway 0
  // twice as strong, the weighted plan pushes more flow through it.
  Graph g(3);
  g.add_edge(2, 0);
  g.add_edge(2, 1);
  ClusterTopology topo(std::move(g), {true, true, false});
  const std::vector<std::int64_t> demand = {1, 1, 4};

  const RelayPlan even = RelayPlan::balanced(topo, demand);
  const RelayPlan skewed =
      RelayPlan::balanced_weighted(topo, demand, {2, 1, 2});

  // Even capacities split 2/2 through the gateways; the skewed plan may
  // give gateway 0 more.  Invariant: the weighted max load respects the
  // weights (load ≤ δ·w per sensor).
  const auto delta = skewed.max_load();
  EXPECT_LE(skewed.load(0), 2 * delta);
  EXPECT_LE(skewed.load(1), 1 * delta);
  EXPECT_GE(skewed.load(0), skewed.load(1));
  EXPECT_LE(skewed.max_load(), even.max_load());
}

}  // namespace
}  // namespace mhp
