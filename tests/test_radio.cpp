#include <gtest/gtest.h>

#include <cmath>

#include "util/assertx.hpp"
#include "radio/channel.hpp"
#include "radio/energy.hpp"
#include "radio/propagation.hpp"
#include "sim/simulator.hpp"

namespace mhp {
namespace {

// ---------- Propagation ----------

TEST(FreeSpace, InverseSquareDecay) {
  FreeSpace fs;
  const double p1 = fs.rx_power_w(1.0, {0, 0}, {10, 0});
  const double p2 = fs.rx_power_w(1.0, {0, 0}, {20, 0});
  EXPECT_NEAR(p1 / p2, 4.0, 1e-9);
}

TEST(FreeSpace, ZeroDistanceReturnsTxPower) {
  FreeSpace fs;
  EXPECT_DOUBLE_EQ(fs.rx_power_w(0.7, {1, 1}, {1, 1}), 0.7);
}

TEST(TwoRayGround, MatchesFriisInsideCrossover) {
  TwoRayGround tr;
  FreeSpace fs;
  const double d = tr.crossover_distance_m() * 0.5;
  EXPECT_NEAR(tr.rx_power_w(1.0, {0, 0}, {d, 0}),
              fs.rx_power_w(1.0, {0, 0}, {d, 0}), 1e-15);
}

TEST(TwoRayGround, FourthPowerDecayBeyondCrossover) {
  TwoRayGround tr;
  const double d = tr.crossover_distance_m() * 2.0;
  const double p1 = tr.rx_power_w(1.0, {0, 0}, {d, 0});
  const double p2 = tr.rx_power_w(1.0, {0, 0}, {2 * d, 0});
  EXPECT_NEAR(p1 / p2, 16.0, 1e-9);
}

TEST(TwoRayGround, CrossoverDistanceFormula) {
  TwoRayGround tr(914e6, 1.5);
  const double lambda = 299792458.0 / 914e6;
  EXPECT_NEAR(tr.crossover_distance_m(),
              4.0 * M_PI * 1.5 * 1.5 / lambda, 1e-9);
}

TEST(LogDistanceShadowing, DeterministicPerPair) {
  LogDistanceShadowing ls(3.0, 6.0, 1.0, 914e6, 42);
  const double a = ls.rx_power_w(1.0, {0, 0}, {50, 20});
  const double b = ls.rx_power_w(1.0, {0, 0}, {50, 20});
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(LogDistanceShadowing, Symmetric) {
  LogDistanceShadowing ls(3.0, 6.0, 1.0, 914e6, 42);
  EXPECT_DOUBLE_EQ(ls.rx_power_w(1.0, {0, 0}, {50, 20}),
                   ls.rx_power_w(1.0, {50, 20}, {0, 0}));
}

TEST(LogDistanceShadowing, EnvironmentSeedChangesCoverage) {
  LogDistanceShadowing a(3.0, 6.0, 1.0, 914e6, 1);
  LogDistanceShadowing b(3.0, 6.0, 1.0, 914e6, 2);
  EXPECT_NE(a.rx_power_w(1.0, {0, 0}, {50, 20}),
            b.rx_power_w(1.0, {0, 0}, {50, 20}));
}

TEST(LogDistanceShadowing, NonDiscCoverage) {
  // With shadowing, equal distances can differ wildly in received power —
  // the paper's "coverage area may not be a disc" point.
  LogDistanceShadowing ls(3.0, 8.0, 1.0, 914e6, 7);
  double lo = 1e300, hi = 0.0;
  for (int k = 0; k < 32; ++k) {
    const double theta = 2.0 * M_PI * k / 32.0;
    const double p = ls.rx_power_w(
        1.0, {0, 0}, {60.0 * std::cos(theta), 60.0 * std::sin(theta)});
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_GT(hi / lo, 10.0);  // >10 dB spread around the circle
}

// ---------- Energy ----------

TEST(EnergyModel, TypicalOrdering) {
  const EnergyModel m = EnergyModel::typical_sensor();
  EXPECT_GT(m.tx_w, m.rx_w);
  EXPECT_GT(m.rx_w, m.idle_w * 0.99);
  EXPECT_GT(m.idle_w, 100.0 * m.sleep_w);  // idle listening dominates sleep
}

TEST(EnergyMeter, AccumulatesPerState) {
  EnergyMeter meter(EnergyModel{2.0, 1.0, 0.5, 0.1});
  meter.accumulate(RadioState::kTx, Time::sec(2));
  meter.accumulate(RadioState::kSleep, Time::sec(8));
  EXPECT_DOUBLE_EQ(meter.energy_in_j(RadioState::kTx), 4.0);
  EXPECT_DOUBLE_EQ(meter.energy_in_j(RadioState::kSleep), 0.8);
  EXPECT_DOUBLE_EQ(meter.total_energy_j(), 4.8);
  EXPECT_DOUBLE_EQ(meter.active_fraction(), 0.2);
  EXPECT_DOUBLE_EQ(meter.average_power_w(), 0.48);
}

TEST(RadioTracker, TransitionsChargeElapsedState) {
  RadioTracker t(EnergyModel{2.0, 1.0, 0.5, 0.1}, Time::zero(),
                 RadioState::kIdle);
  t.set_state(Time::sec(3), RadioState::kTx);
  t.set_state(Time::sec(4), RadioState::kSleep);
  t.settle(Time::sec(10));
  EXPECT_EQ(t.meter().time_in(RadioState::kIdle), Time::sec(3));
  EXPECT_EQ(t.meter().time_in(RadioState::kTx), Time::sec(1));
  EXPECT_EQ(t.meter().time_in(RadioState::kSleep), Time::sec(6));
}

TEST(RadioTracker, ResetClearsMeter) {
  RadioTracker t(EnergyModel::typical_sensor(), Time::zero(),
                 RadioState::kIdle);
  t.reset(Time::sec(5));
  EXPECT_EQ(t.meter().total_time(), Time::zero());
}

// ---------- Channel ----------

class ChannelTest : public ::testing::Test {
 protected:
  // Three sensors in a line plus a far node; head at origin.
  //   n0 at (30,0), n1 at (60,0), n2 at (90,0), head (id 3) at (0,0).
  ChannelTest() {
    positions_ = {{30, 0}, {60, 0}, {90, 0}, {0, 0}};
    powers_ = {RadioParams::kSensorTxPowerW, RadioParams::kSensorTxPowerW,
               RadioParams::kSensorTxPowerW, RadioParams::kHeadTxPowerW};
    channel_ =
        std::make_unique<Channel>(sim_, prop_, RadioParams{}, positions_,
                                  powers_);
  }

  Simulator sim_;
  TwoRayGround prop_;
  std::vector<Vec2> positions_;
  std::vector<double> powers_;
  std::unique_ptr<Channel> channel_;
};

TEST_F(ChannelTest, AirtimeMatchesBandwidth) {
  // 80 bytes at 200 kbps = 3.2 ms.
  EXPECT_EQ(channel_->airtime(80), Time::us(3200));
}

TEST_F(ChannelTest, SensorRangeIsBounded) {
  // Sensor Friis range at these powers is ≈61 m.
  EXPECT_TRUE(channel_->link_ok(0, 1));  // 30 m
  EXPECT_TRUE(channel_->link_ok(0, 2));  // 60 m: just inside
  EXPECT_TRUE(channel_->link_ok(1, 0));  // symmetric powers → symmetric
  // A 70 m sensor link is out of range.
  Simulator sim;
  TwoRayGround prop;
  Channel far(sim, prop, RadioParams{}, {{0, 0}, {70, 0}},
              {RadioParams::kSensorTxPowerW, RadioParams::kSensorTxPowerW});
  EXPECT_FALSE(far.link_ok(0, 1));
}

TEST_F(ChannelTest, HeadReachesEveryone) {
  for (NodeId s = 0; s < 3; ++s) EXPECT_TRUE(channel_->link_ok(3, s));
}

TEST_F(ChannelTest, ConcurrentOutcomeHalfDuplex) {
  // n1 sends to n0 while n0 sends to head: n0 cannot receive.
  const auto out = channel_->concurrent_outcome(
      {{1, 0}, {0, 3}});
  EXPECT_FALSE(out[0]);
}

TEST_F(ChannelTest, ConcurrentInterferenceBreaksWeakLink) {
  // Alone, n2→n1 works (30 m).  With n0 also transmitting (30 m from n1),
  // the SINR at n1 collapses.
  const auto alone = channel_->concurrent_outcome({{2, 1}});
  EXPECT_TRUE(alone[0]);
  const auto jammed = channel_->concurrent_outcome({{2, 1}, {0, 3}});
  EXPECT_FALSE(jammed[0]);
}

TEST_F(ChannelTest, DuplicateSenderRejected) {
  EXPECT_THROW(channel_->concurrent_outcome({{0, 1}, {0, 3}}),
               ContractViolation);
}

TEST(ChannelAccumulation, PairwiseCompatibleTripleCanFail) {
  // The paper's Fig 3: three transmissions, pairwise fine, jointly broken.
  // Three tight sender→receiver pairs placed far apart but with the middle
  // receiver seeing *accumulated* interference from both other senders.
  Simulator sim;
  TwoRayGround prop;
  RadioParams params;
  // Three 55 m sender→receiver pairs at 30× sensor power.  Each outside
  // sender is exactly 140 m from the middle receiver r1: a single
  // interferer leaves SINR ≈ 17 (fine); the two together halve it to
  // ≈ 8.5, below the 10× threshold.
  std::vector<Vec2> pos = {
      {195, 0}, {250, 0},   // s0 → r0
      {0, 0},   {55, 0},    // s1 → r1 (the victim)
      {55, 140}, {55, 195}, // s2 → r2
  };
  std::vector<double> pw(6, 30.0 * RadioParams::kSensorTxPowerW);
  Channel ch(sim, prop, params, pos, pw);

  std::vector<Channel::TxRx> pairs = {{0, 1}, {2, 3}, {4, 5}};
  // All three pairwise combinations fine:
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = i + 1; j < 3; ++j) {
      const auto out = ch.concurrent_outcome({pairs[i], pairs[j]});
      ASSERT_TRUE(out[0] && out[1])
          << "pair (" << i << "," << j << ") should be compatible";
    }
  // The triple fails at r1 (index 1 of the group): interference
  // accumulates even though every pair was compatible.
  const auto all = ch.concurrent_outcome(pairs);
  EXPECT_FALSE(all[1]);
}

TEST_F(ChannelTest, TransmitDeliversToListeners) {
  struct Sink : ChannelListener {
    int begins = 0;
    int ends = 0;
    bool ok = false;
    void on_frame_begin(const Frame&, NodeId, double, Time) override {
      ++begins;
    }
    void on_frame_end(const Frame&, NodeId, bool phy_ok) override {
      ++ends;
      ok = phy_ok;
    }
  };
  Sink sink;
  channel_->set_listener(0, &sink);
  Frame f;
  f.uid = 1;
  f.kind = FrameKind::kData;
  f.src = 1;
  f.dst = 0;
  f.size_bytes = 80;
  channel_->transmit(1, f);
  sim_.run();
  EXPECT_EQ(sink.begins, 1);
  EXPECT_EQ(sink.ends, 1);
  EXPECT_TRUE(sink.ok);
  EXPECT_EQ(channel_->frames_transmitted(), 1u);
}

TEST_F(ChannelTest, OverlappingTransmissionsCorrupt) {
  struct Sink : ChannelListener {
    int good = 0, bad = 0;
    void on_frame_end(const Frame&, NodeId, bool ok) override {
      (ok ? good : bad)++;
    }
  };
  Sink at1;
  channel_->set_listener(1, &at1);
  // n0 and n2 both 30 m from n1 transmit simultaneously to n1.
  Frame a, b;
  a.uid = 1, a.src = 0, a.dst = 1, a.size_bytes = 80;
  b.uid = 2, b.src = 2, b.dst = 1, b.size_bytes = 80;
  channel_->transmit(0, a);
  channel_->transmit(2, b);
  sim_.run();
  EXPECT_EQ(at1.good, 0);
  EXPECT_EQ(at1.bad, 2);
}

TEST_F(ChannelTest, CarrierSenseSeesActiveTransmission) {
  EXPECT_FALSE(channel_->carrier_sensed(1));
  Frame f;
  f.uid = 1, f.src = 0, f.dst = 3, f.size_bytes = 80;
  channel_->transmit(0, f);
  // While in flight the field at n1 (30 m away) exceeds the CS threshold.
  EXPECT_TRUE(channel_->carrier_sensed(1));
  sim_.run();
  EXPECT_FALSE(channel_->carrier_sensed(1));
}

TEST_F(ChannelTest, DoubleTransmitFromSameNodeThrows) {
  Frame f;
  f.uid = 1, f.src = 0, f.dst = 3, f.size_bytes = 80;
  channel_->transmit(0, f);
  Frame g = f;
  g.uid = 2;
  EXPECT_THROW(channel_->transmit(0, g), ContractViolation);
  sim_.run();
}

}  // namespace
}  // namespace mhp
