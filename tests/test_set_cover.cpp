#include <gtest/gtest.h>

#include <cmath>

#include "core/set_cover.hpp"
#include "util/assertx.hpp"
#include "util/rng.hpp"

namespace mhp {
namespace {

bool covers(std::size_t universe, const std::vector<WeightedSubset>& subsets,
            const SetCoverResult& r) {
  std::vector<bool> got(universe, false);
  for (std::size_t i : r.chosen)
    for (std::size_t e : subsets[i].elements) got[e] = true;
  for (bool b : got)
    if (!b) return false;
  return true;
}

TEST(GreedyCover, CoversSimpleInstance) {
  const std::vector<WeightedSubset> subsets = {
      {{0, 1, 2}, 3.0}, {{2, 3}, 1.0}, {{3, 4}, 1.0}, {{0, 4}, 1.0}};
  const auto r = greedy_set_cover(5, subsets);
  EXPECT_TRUE(r.covered);
  EXPECT_TRUE(covers(5, subsets, r));
}

TEST(GreedyCover, PrefersCheapPerElement) {
  // One big costly subset vs many cheap singletons: covering cost picks
  // the big one when it is cheaper per element.
  const std::vector<WeightedSubset> subsets = {
      {{0, 1, 2, 3}, 2.0},  // 0.5 per element
      {{0}, 1.0},
      {{1}, 1.0},
      {{2}, 1.0},
      {{3}, 1.0}};
  const auto r = greedy_set_cover(4, subsets);
  ASSERT_EQ(r.chosen.size(), 1u);
  EXPECT_EQ(r.chosen[0], 0u);
  EXPECT_DOUBLE_EQ(r.total_cost, 2.0);
}

TEST(GreedyCover, ReportsUncoverable) {
  const std::vector<WeightedSubset> subsets = {{{0}, 1.0}};
  const auto r = greedy_set_cover(2, subsets);
  EXPECT_FALSE(r.covered);
}

TEST(GreedyCover, EmptyUniverseTrivial) {
  const auto r = greedy_set_cover(0, {});
  EXPECT_TRUE(r.covered);
  EXPECT_TRUE(r.chosen.empty());
}

TEST(GreedyCover, ZeroCostSubsetsTakenFreely) {
  const std::vector<WeightedSubset> subsets = {{{0, 1}, 0.0}, {{1}, 5.0}};
  const auto r = greedy_set_cover(2, subsets);
  EXPECT_TRUE(r.covered);
  EXPECT_DOUBLE_EQ(r.total_cost, 0.0);
}

TEST(ExactCover, FindsOptimum) {
  const std::vector<WeightedSubset> subsets = {
      {{0, 1}, 2.0}, {{1, 2}, 2.0}, {{0, 1, 2}, 3.5}, {{2}, 0.5}};
  const auto r = exact_set_cover(3, subsets);
  EXPECT_TRUE(r.covered);
  EXPECT_DOUBLE_EQ(r.total_cost, 2.5);  // {0,1} + {2}
}

TEST(ExactCover, Uncoverable) {
  const auto r = exact_set_cover(2, {{{0}, 1.0}});
  EXPECT_FALSE(r.covered);
}

class GreedyVsExact : public ::testing::TestWithParam<int> {};

TEST_P(GreedyVsExact, ApproximationWithinHarmonicBound) {
  Rng rng(7000 + static_cast<std::uint64_t>(GetParam()));
  const std::size_t universe = 4 + rng.below(8);
  const std::size_t count = 4 + rng.below(8);
  std::vector<WeightedSubset> subsets(count);
  for (auto& s : subsets) {
    const std::size_t size = 1 + rng.below(universe);
    for (std::size_t k = 0; k < size; ++k)
      s.elements.push_back(rng.below(universe));
    s.cost = 1.0 + rng.uniform(0.0, 5.0);
  }
  // Ensure coverability: one subset with everything, expensive.
  WeightedSubset all;
  for (std::size_t e = 0; e < universe; ++e) all.elements.push_back(e);
  all.cost = 20.0;
  subsets.push_back(all);

  const auto greedy = greedy_set_cover(universe, subsets);
  const auto exact = exact_set_cover(universe, subsets);
  ASSERT_TRUE(greedy.covered);
  ASSERT_TRUE(exact.covered);
  EXPECT_TRUE(covers(universe, subsets, greedy));
  // H(n) approximation guarantee.
  double harmonic = 0.0;
  for (std::size_t k = 1; k <= universe; ++k)
    harmonic += 1.0 / static_cast<double>(k);
  EXPECT_LE(greedy.total_cost, exact.total_cost * harmonic + 1e-9);
  EXPECT_GE(greedy.total_cost, exact.total_cost - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyVsExact, ::testing::Range(0, 25));

TEST(GreedyCover, RejectsBadInputs) {
  EXPECT_THROW(greedy_set_cover(2, {{{5}, 1.0}}), ContractViolation);
  EXPECT_THROW(greedy_set_cover(2, {{{0}, -1.0}}), ContractViolation);
}

}  // namespace
}  // namespace mhp
