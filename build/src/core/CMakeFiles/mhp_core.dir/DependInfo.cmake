
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ack_collection.cpp" "src/core/CMakeFiles/mhp_core.dir/ack_collection.cpp.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/ack_collection.cpp.o.d"
  "/root/repo/src/core/capacity.cpp" "src/core/CMakeFiles/mhp_core.dir/capacity.cpp.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/capacity.cpp.o.d"
  "/root/repo/src/core/coloring.cpp" "src/core/CMakeFiles/mhp_core.dir/coloring.cpp.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/coloring.cpp.o.d"
  "/root/repo/src/core/greedy_scheduler.cpp" "src/core/CMakeFiles/mhp_core.dir/greedy_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/greedy_scheduler.cpp.o.d"
  "/root/repo/src/core/head_agent.cpp" "src/core/CMakeFiles/mhp_core.dir/head_agent.cpp.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/head_agent.cpp.o.d"
  "/root/repo/src/core/interference.cpp" "src/core/CMakeFiles/mhp_core.dir/interference.cpp.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/interference.cpp.o.d"
  "/root/repo/src/core/jmhrp.cpp" "src/core/CMakeFiles/mhp_core.dir/jmhrp.cpp.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/jmhrp.cpp.o.d"
  "/root/repo/src/core/multi_cluster_sim.cpp" "src/core/CMakeFiles/mhp_core.dir/multi_cluster_sim.cpp.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/multi_cluster_sim.cpp.o.d"
  "/root/repo/src/core/optimal_scheduler.cpp" "src/core/CMakeFiles/mhp_core.dir/optimal_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/optimal_scheduler.cpp.o.d"
  "/root/repo/src/core/polling_simulation.cpp" "src/core/CMakeFiles/mhp_core.dir/polling_simulation.cpp.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/polling_simulation.cpp.o.d"
  "/root/repo/src/core/reductions.cpp" "src/core/CMakeFiles/mhp_core.dir/reductions.cpp.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/reductions.cpp.o.d"
  "/root/repo/src/core/routing.cpp" "src/core/CMakeFiles/mhp_core.dir/routing.cpp.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/routing.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/mhp_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/schedule.cpp.o.d"
  "/root/repo/src/core/sectors.cpp" "src/core/CMakeFiles/mhp_core.dir/sectors.cpp.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/sectors.cpp.o.d"
  "/root/repo/src/core/sensor_agent.cpp" "src/core/CMakeFiles/mhp_core.dir/sensor_agent.cpp.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/sensor_agent.cpp.o.d"
  "/root/repo/src/core/set_cover.cpp" "src/core/CMakeFiles/mhp_core.dir/set_cover.cpp.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/set_cover.cpp.o.d"
  "/root/repo/src/core/setup_phase.cpp" "src/core/CMakeFiles/mhp_core.dir/setup_phase.cpp.o" "gcc" "src/core/CMakeFiles/mhp_core.dir/setup_phase.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mhp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mhp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mhp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/mhp_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/mhp_flow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
