file(REMOVE_RECURSE
  "libmhp_radio.a"
)
