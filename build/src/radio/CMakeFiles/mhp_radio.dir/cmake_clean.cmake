file(REMOVE_RECURSE
  "CMakeFiles/mhp_radio.dir/channel.cpp.o"
  "CMakeFiles/mhp_radio.dir/channel.cpp.o.d"
  "CMakeFiles/mhp_radio.dir/energy.cpp.o"
  "CMakeFiles/mhp_radio.dir/energy.cpp.o.d"
  "CMakeFiles/mhp_radio.dir/propagation.cpp.o"
  "CMakeFiles/mhp_radio.dir/propagation.cpp.o.d"
  "libmhp_radio.a"
  "libmhp_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhp_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
