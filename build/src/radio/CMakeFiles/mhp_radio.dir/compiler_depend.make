# Empty compiler generated dependencies file for mhp_radio.
# This may be replaced when dependencies are built.
