file(REMOVE_RECURSE
  "CMakeFiles/mhp_metrics.dir/lifetime.cpp.o"
  "CMakeFiles/mhp_metrics.dir/lifetime.cpp.o.d"
  "libmhp_metrics.a"
  "libmhp_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhp_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
