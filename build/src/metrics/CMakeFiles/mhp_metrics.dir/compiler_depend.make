# Empty compiler generated dependencies file for mhp_metrics.
# This may be replaced when dependencies are built.
