file(REMOVE_RECURSE
  "libmhp_metrics.a"
)
