# Empty dependencies file for mhp_util.
# This may be replaced when dependencies are built.
