file(REMOVE_RECURSE
  "libmhp_util.a"
)
