file(REMOVE_RECURSE
  "CMakeFiles/mhp_util.dir/rng.cpp.o"
  "CMakeFiles/mhp_util.dir/rng.cpp.o.d"
  "CMakeFiles/mhp_util.dir/stats.cpp.o"
  "CMakeFiles/mhp_util.dir/stats.cpp.o.d"
  "CMakeFiles/mhp_util.dir/table.cpp.o"
  "CMakeFiles/mhp_util.dir/table.cpp.o.d"
  "CMakeFiles/mhp_util.dir/thread_pool.cpp.o"
  "CMakeFiles/mhp_util.dir/thread_pool.cpp.o.d"
  "libmhp_util.a"
  "libmhp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
