# Empty dependencies file for mhp_flow.
# This may be replaced when dependencies are built.
