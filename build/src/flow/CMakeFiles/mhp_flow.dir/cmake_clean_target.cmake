file(REMOVE_RECURSE
  "libmhp_flow.a"
)
