
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/flow_network.cpp" "src/flow/CMakeFiles/mhp_flow.dir/flow_network.cpp.o" "gcc" "src/flow/CMakeFiles/mhp_flow.dir/flow_network.cpp.o.d"
  "/root/repo/src/flow/max_flow.cpp" "src/flow/CMakeFiles/mhp_flow.dir/max_flow.cpp.o" "gcc" "src/flow/CMakeFiles/mhp_flow.dir/max_flow.cpp.o.d"
  "/root/repo/src/flow/min_max_load.cpp" "src/flow/CMakeFiles/mhp_flow.dir/min_max_load.cpp.o" "gcc" "src/flow/CMakeFiles/mhp_flow.dir/min_max_load.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mhp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mhp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
