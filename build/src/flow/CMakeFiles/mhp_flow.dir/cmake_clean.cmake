file(REMOVE_RECURSE
  "CMakeFiles/mhp_flow.dir/flow_network.cpp.o"
  "CMakeFiles/mhp_flow.dir/flow_network.cpp.o.d"
  "CMakeFiles/mhp_flow.dir/max_flow.cpp.o"
  "CMakeFiles/mhp_flow.dir/max_flow.cpp.o.d"
  "CMakeFiles/mhp_flow.dir/min_max_load.cpp.o"
  "CMakeFiles/mhp_flow.dir/min_max_load.cpp.o.d"
  "libmhp_flow.a"
  "libmhp_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhp_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
