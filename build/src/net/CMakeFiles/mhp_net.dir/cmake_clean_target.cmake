file(REMOVE_RECURSE
  "libmhp_net.a"
)
