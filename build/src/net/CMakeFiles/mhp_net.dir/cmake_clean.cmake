file(REMOVE_RECURSE
  "CMakeFiles/mhp_net.dir/cluster.cpp.o"
  "CMakeFiles/mhp_net.dir/cluster.cpp.o.d"
  "CMakeFiles/mhp_net.dir/deployment.cpp.o"
  "CMakeFiles/mhp_net.dir/deployment.cpp.o.d"
  "CMakeFiles/mhp_net.dir/graph.cpp.o"
  "CMakeFiles/mhp_net.dir/graph.cpp.o.d"
  "CMakeFiles/mhp_net.dir/packet.cpp.o"
  "CMakeFiles/mhp_net.dir/packet.cpp.o.d"
  "libmhp_net.a"
  "libmhp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
