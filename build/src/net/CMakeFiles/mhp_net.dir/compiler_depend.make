# Empty compiler generated dependencies file for mhp_net.
# This may be replaced when dependencies are built.
