file(REMOVE_RECURSE
  "libmhp_sim.a"
)
