file(REMOVE_RECURSE
  "CMakeFiles/mhp_sim.dir/event_queue.cpp.o"
  "CMakeFiles/mhp_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/mhp_sim.dir/simulator.cpp.o"
  "CMakeFiles/mhp_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/mhp_sim.dir/time.cpp.o"
  "CMakeFiles/mhp_sim.dir/time.cpp.o.d"
  "CMakeFiles/mhp_sim.dir/trace.cpp.o"
  "CMakeFiles/mhp_sim.dir/trace.cpp.o.d"
  "libmhp_sim.a"
  "libmhp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
