# Empty dependencies file for mhp_baseline.
# This may be replaced when dependencies are built.
