file(REMOVE_RECURSE
  "CMakeFiles/mhp_baseline.dir/aodv.cpp.o"
  "CMakeFiles/mhp_baseline.dir/aodv.cpp.o.d"
  "CMakeFiles/mhp_baseline.dir/smac_node.cpp.o"
  "CMakeFiles/mhp_baseline.dir/smac_node.cpp.o.d"
  "CMakeFiles/mhp_baseline.dir/smac_simulation.cpp.o"
  "CMakeFiles/mhp_baseline.dir/smac_simulation.cpp.o.d"
  "libmhp_baseline.a"
  "libmhp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
