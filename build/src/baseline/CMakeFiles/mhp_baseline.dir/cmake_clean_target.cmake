file(REMOVE_RECURSE
  "libmhp_baseline.a"
)
