
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ack_coloring.cpp" "tests/CMakeFiles/mhp_tests.dir/test_ack_coloring.cpp.o" "gcc" "tests/CMakeFiles/mhp_tests.dir/test_ack_coloring.cpp.o.d"
  "/root/repo/tests/test_baseline.cpp" "tests/CMakeFiles/mhp_tests.dir/test_baseline.cpp.o" "gcc" "tests/CMakeFiles/mhp_tests.dir/test_baseline.cpp.o.d"
  "/root/repo/tests/test_capacity.cpp" "tests/CMakeFiles/mhp_tests.dir/test_capacity.cpp.o" "gcc" "tests/CMakeFiles/mhp_tests.dir/test_capacity.cpp.o.d"
  "/root/repo/tests/test_exp.cpp" "tests/CMakeFiles/mhp_tests.dir/test_exp.cpp.o" "gcc" "tests/CMakeFiles/mhp_tests.dir/test_exp.cpp.o.d"
  "/root/repo/tests/test_flow.cpp" "tests/CMakeFiles/mhp_tests.dir/test_flow.cpp.o" "gcc" "tests/CMakeFiles/mhp_tests.dir/test_flow.cpp.o.d"
  "/root/repo/tests/test_interference.cpp" "tests/CMakeFiles/mhp_tests.dir/test_interference.cpp.o" "gcc" "tests/CMakeFiles/mhp_tests.dir/test_interference.cpp.o.d"
  "/root/repo/tests/test_jmhrp.cpp" "tests/CMakeFiles/mhp_tests.dir/test_jmhrp.cpp.o" "gcc" "tests/CMakeFiles/mhp_tests.dir/test_jmhrp.cpp.o.d"
  "/root/repo/tests/test_multi_cluster.cpp" "tests/CMakeFiles/mhp_tests.dir/test_multi_cluster.cpp.o" "gcc" "tests/CMakeFiles/mhp_tests.dir/test_multi_cluster.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/mhp_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/mhp_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_protocol.cpp" "tests/CMakeFiles/mhp_tests.dir/test_protocol.cpp.o" "gcc" "tests/CMakeFiles/mhp_tests.dir/test_protocol.cpp.o.d"
  "/root/repo/tests/test_radio.cpp" "tests/CMakeFiles/mhp_tests.dir/test_radio.cpp.o" "gcc" "tests/CMakeFiles/mhp_tests.dir/test_radio.cpp.o.d"
  "/root/repo/tests/test_reductions.cpp" "tests/CMakeFiles/mhp_tests.dir/test_reductions.cpp.o" "gcc" "tests/CMakeFiles/mhp_tests.dir/test_reductions.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/mhp_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/mhp_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_routing.cpp" "tests/CMakeFiles/mhp_tests.dir/test_routing.cpp.o" "gcc" "tests/CMakeFiles/mhp_tests.dir/test_routing.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/mhp_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/mhp_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_sectors.cpp" "tests/CMakeFiles/mhp_tests.dir/test_sectors.cpp.o" "gcc" "tests/CMakeFiles/mhp_tests.dir/test_sectors.cpp.o.d"
  "/root/repo/tests/test_set_cover.cpp" "tests/CMakeFiles/mhp_tests.dir/test_set_cover.cpp.o" "gcc" "tests/CMakeFiles/mhp_tests.dir/test_set_cover.cpp.o.d"
  "/root/repo/tests/test_setup_phase.cpp" "tests/CMakeFiles/mhp_tests.dir/test_setup_phase.cpp.o" "gcc" "tests/CMakeFiles/mhp_tests.dir/test_setup_phase.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/mhp_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/mhp_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/mhp_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/mhp_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mhp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/mhp_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/mhp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/mhp_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mhp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mhp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mhp_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mhp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
