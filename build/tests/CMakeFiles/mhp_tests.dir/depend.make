# Empty dependencies file for mhp_tests.
# This may be replaced when dependencies are built.
