file(REMOVE_RECURSE
  "CMakeFiles/fig7a_active_time.dir/fig7a_active_time.cpp.o"
  "CMakeFiles/fig7a_active_time.dir/fig7a_active_time.cpp.o.d"
  "fig7a_active_time"
  "fig7a_active_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_active_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
