# Empty dependencies file for fig7a_active_time.
# This may be replaced when dependencies are built.
