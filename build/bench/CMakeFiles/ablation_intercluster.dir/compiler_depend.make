# Empty compiler generated dependencies file for ablation_intercluster.
# This may be replaced when dependencies are built.
