file(REMOVE_RECURSE
  "CMakeFiles/ablation_intercluster.dir/ablation_intercluster.cpp.o"
  "CMakeFiles/ablation_intercluster.dir/ablation_intercluster.cpp.o.d"
  "ablation_intercluster"
  "ablation_intercluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_intercluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
