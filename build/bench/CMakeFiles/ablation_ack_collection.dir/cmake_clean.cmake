file(REMOVE_RECURSE
  "CMakeFiles/ablation_ack_collection.dir/ablation_ack_collection.cpp.o"
  "CMakeFiles/ablation_ack_collection.dir/ablation_ack_collection.cpp.o.d"
  "ablation_ack_collection"
  "ablation_ack_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ack_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
