# Empty compiler generated dependencies file for ablation_ack_collection.
# This may be replaced when dependencies are built.
