# Empty dependencies file for fig7c_sector_lifetime.
# This may be replaced when dependencies are built.
