file(REMOVE_RECURSE
  "CMakeFiles/fig7c_sector_lifetime.dir/fig7c_sector_lifetime.cpp.o"
  "CMakeFiles/fig7c_sector_lifetime.dir/fig7c_sector_lifetime.cpp.o.d"
  "fig7c_sector_lifetime"
  "fig7c_sector_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7c_sector_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
