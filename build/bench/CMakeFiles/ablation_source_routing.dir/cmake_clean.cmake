file(REMOVE_RECURSE
  "CMakeFiles/ablation_source_routing.dir/ablation_source_routing.cpp.o"
  "CMakeFiles/ablation_source_routing.dir/ablation_source_routing.cpp.o.d"
  "ablation_source_routing"
  "ablation_source_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_source_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
