# Empty compiler generated dependencies file for ablation_source_routing.
# This may be replaced when dependencies are built.
