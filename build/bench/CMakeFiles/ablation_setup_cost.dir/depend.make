# Empty dependencies file for ablation_setup_cost.
# This may be replaced when dependencies are built.
