file(REMOVE_RECURSE
  "CMakeFiles/ablation_setup_cost.dir/ablation_setup_cost.cpp.o"
  "CMakeFiles/ablation_setup_cost.dir/ablation_setup_cost.cpp.o.d"
  "ablation_setup_cost"
  "ablation_setup_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_setup_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
