file(REMOVE_RECURSE
  "CMakeFiles/ablation_greedy_vs_optimal.dir/ablation_greedy_vs_optimal.cpp.o"
  "CMakeFiles/ablation_greedy_vs_optimal.dir/ablation_greedy_vs_optimal.cpp.o.d"
  "ablation_greedy_vs_optimal"
  "ablation_greedy_vs_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_greedy_vs_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
