
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_greedy_vs_optimal.cpp" "bench/CMakeFiles/ablation_greedy_vs_optimal.dir/ablation_greedy_vs_optimal.cpp.o" "gcc" "bench/CMakeFiles/ablation_greedy_vs_optimal.dir/ablation_greedy_vs_optimal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mhp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/mhp_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/mhp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/mhp_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mhp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mhp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mhp_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mhp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
