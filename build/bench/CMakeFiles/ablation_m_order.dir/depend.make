# Empty dependencies file for ablation_m_order.
# This may be replaced when dependencies are built.
