file(REMOVE_RECURSE
  "CMakeFiles/ablation_m_order.dir/ablation_m_order.cpp.o"
  "CMakeFiles/ablation_m_order.dir/ablation_m_order.cpp.o.d"
  "ablation_m_order"
  "ablation_m_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_m_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
