# Empty dependencies file for ablation_order_sensitivity.
# This may be replaced when dependencies are built.
