file(REMOVE_RECURSE
  "CMakeFiles/ablation_order_sensitivity.dir/ablation_order_sensitivity.cpp.o"
  "CMakeFiles/ablation_order_sensitivity.dir/ablation_order_sensitivity.cpp.o.d"
  "ablation_order_sensitivity"
  "ablation_order_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_order_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
