file(REMOVE_RECURSE
  "CMakeFiles/ablation_energy_model.dir/ablation_energy_model.cpp.o"
  "CMakeFiles/ablation_energy_model.dir/ablation_energy_model.cpp.o.d"
  "ablation_energy_model"
  "ablation_energy_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_energy_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
