file(REMOVE_RECURSE
  "CMakeFiles/capacity_model.dir/capacity_model.cpp.o"
  "CMakeFiles/capacity_model.dir/capacity_model.cpp.o.d"
  "capacity_model"
  "capacity_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
