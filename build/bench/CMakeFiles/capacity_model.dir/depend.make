# Empty dependencies file for capacity_model.
# This may be replaced when dependencies are built.
