file(REMOVE_RECURSE
  "CMakeFiles/fig7b_throughput.dir/fig7b_throughput.cpp.o"
  "CMakeFiles/fig7b_throughput.dir/fig7b_throughput.cpp.o.d"
  "fig7b_throughput"
  "fig7b_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
