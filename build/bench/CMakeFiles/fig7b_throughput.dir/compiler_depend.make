# Empty compiler generated dependencies file for fig7b_throughput.
# This may be replaced when dependencies are built.
