file(REMOVE_RECURSE
  "CMakeFiles/multi_cluster.dir/multi_cluster.cpp.o"
  "CMakeFiles/multi_cluster.dir/multi_cluster.cpp.o.d"
  "multi_cluster"
  "multi_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
