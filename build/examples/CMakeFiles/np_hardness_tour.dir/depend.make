# Empty dependencies file for np_hardness_tour.
# This may be replaced when dependencies are built.
