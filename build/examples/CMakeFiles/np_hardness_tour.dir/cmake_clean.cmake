file(REMOVE_RECURSE
  "CMakeFiles/np_hardness_tour.dir/np_hardness_tour.cpp.o"
  "CMakeFiles/np_hardness_tour.dir/np_hardness_tour.cpp.o.d"
  "np_hardness_tour"
  "np_hardness_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/np_hardness_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
