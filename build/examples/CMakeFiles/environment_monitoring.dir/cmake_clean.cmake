file(REMOVE_RECURSE
  "CMakeFiles/environment_monitoring.dir/environment_monitoring.cpp.o"
  "CMakeFiles/environment_monitoring.dir/environment_monitoring.cpp.o.d"
  "environment_monitoring"
  "environment_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/environment_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
