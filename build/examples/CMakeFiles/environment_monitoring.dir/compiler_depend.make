# Empty compiler generated dependencies file for environment_monitoring.
# This may be replaced when dependencies are built.
