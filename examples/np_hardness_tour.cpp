// A tour of the paper's NP-hardness constructions, executed.
//
// §III-C reduces Hamiltonian Path to the TSRF polling problem; §IV-A
// reduces Partition to optimal sector partition (CPAR).  This example
// builds both reductions and *solves the source problems through them* —
// the schedules and partitions literally encode the answers.
#include <cstdio>

#include "core/optimal_scheduler.hpp"
#include "core/reductions.hpp"
#include "exp/flags.hpp"

int main(int argc, char** argv) {
  mhp::exp::Flags("example: NP-hardness reductions tour").parse(argc, argv);
  using namespace mhp;

  // --- Lemma 1: Hamiltonian Path via TSRF polling --------------------
  // The Petersen-ish sample: a 6-cycle with one chord.
  Graph g(6);
  for (NodeId i = 0; i < 6; ++i) g.add_edge(i, (i + 1) % 6);
  g.add_edge(0, 3);

  std::printf("Graph: 6-cycle plus chord (0,3)\n");
  TsrfReduction red(g);
  std::printf(
      "TSRF instance: %zu branches, %zu sensors; interference table\n"
      "mirrors the graph's edges (uplink_i || relay_j iff (v_i,v_j) in E)\n",
      red.instance.branches, red.instance.num_sensors());

  OptimalScheduler solver(red.oracle);
  const auto sched = solver.solve(red.instance.requests(), g.size() + 1);
  if (sched) {
    std::printf("minimum polling schedule: %zu slots (= k+1 = %zu)\n",
                sched->slots, g.size() + 1);
    std::printf("%s", sched->schedule.to_string().c_str());
  }
  const auto path = hamiltonian_path_via_tsrfp(g);
  if (path) {
    std::printf("=> Hamiltonian path recovered from the schedule: ");
    for (NodeId v : *path) std::printf("v%u ", v);
    std::printf("\n\n");
  } else {
    std::printf("=> no k+1-slot schedule => no Hamiltonian path\n\n");
  }

  // A star has no Hamiltonian path — and no tight schedule.
  Graph star(4);
  for (NodeId leaf = 1; leaf < 4; ++leaf) star.add_edge(0, leaf);
  std::printf("Star graph K_{1,3}: %s\n\n",
              hamiltonian_path_via_tsrfp(star)
                  ? "Hamiltonian path found (unexpected!)"
                  : "no 5-slot schedule exists => no Hamiltonian path");

  // --- Theorem 5: Partition via CPAR ---------------------------------
  const std::vector<std::int64_t> ints = {3, 1, 1, 2, 2, 1};
  std::printf("Partition instance {3,1,1,2,2,1} (sum 10):\n");
  CparInstance cpar(ints);
  std::printf(
      "CPAR cluster: 2 gateways + %zu chain sensors; a sector split\n"
      "meeting the pseudo-power bound balances the chains.\n",
      cpar.topology.num_sensors() - 2);
  const auto split = partition_via_cpar(cpar);
  if (split) {
    std::printf("=> balanced partition found; gateway-1 sector gets {");
    std::int64_t sum = 0;
    for (std::size_t i : *split) {
      std::printf(" %lld", static_cast<long long>(ints[i]));
      sum += ints[i];
    }
    std::printf(" } (sum %lld of %d)\n", static_cast<long long>(sum), 5);
  }

  const std::vector<std::int64_t> odd = {2, 4, 16};
  CparInstance impossible(odd);
  std::printf("Partition instance {2,4,16}: %s\n",
              partition_via_cpar(impossible)
                  ? "partitioned (unexpected!)"
                  : "no balanced sector split exists (as expected)");

  // --- Theorem 3: X1MHP padding --------------------------------------
  Graph tiny(2);
  tiny.add_edge(0, 1);
  TsrfReduction base(tiny);
  X1mhpReduction x1(base);
  std::printf(
      "\nX1MHP instance from a 2-branch TSRF: every one of its %zu\n"
      "sensors holds exactly one packet, yet scheduling it optimally\n"
      "still answers the original TSRFP question (Theorem 3).\n",
      x1.instance.layout.size() * 6);
  return 0;
}
