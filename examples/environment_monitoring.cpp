// Environment monitoring: the paper's motivating application (§I).
//
// A ground-temperature cluster samples slowly (one 80-byte reading per
// sensor per minute-ish), wakes once per second, and must last for months
// on coin cells.  This example compares the plain duty-cycle protocol
// with the sectored variant (§IV) and prints a deployment-planning
// summary: energy budget, projected lifetime, and data latency.
#include <cstdio>

#include "core/polling_simulation.hpp"
#include "metrics/lifetime.hpp"
#include "net/deployment.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "exp/flags.hpp"

int main(int argc, char** argv) {
  mhp::exp::Flags("example: environment-monitoring cluster walkthrough").parse(argc, argv);
  using namespace mhp;

  // 40 sensors over a 200 m field; readings at 10 B/s (one 80-byte packet
  // every 8 seconds — a fast environmental-monitoring rate).
  Rng rng(2026);
  const Deployment dep = deploy_connected_uniform_square(40, 200.0, 60.0, rng);
  constexpr double kRate = 10.0;
  const BatteryModel battery{2400.0};  // one CR2477 coin cell, ~2.4 kJ

  struct Variant {
    const char* name;
    bool sectors;
  };
  Table table({"variant", "sectors", "delivery %", "active %",
               "max power (mW)", "lifetime (days)", "latency (ms)"});
  table.set_precision(2, 1);
  table.set_precision(3, 2);
  table.set_precision(4, 3);
  table.set_precision(5, 1);
  table.set_precision(6, 0);

  for (const Variant v : {Variant{"whole-cluster", false},
                          Variant{"sectored", true}}) {
    ProtocolConfig cfg;
    cfg.cycle_period = Time::ms(1000);
    cfg.use_sectors = v.sectors;
    cfg.seed = 7;
    PollingSimulation sim(dep, cfg, kRate);
    const auto rep = sim.run(Time::sec(70), Time::sec(10));

    const double lifetime_days =
        rep.lifetime_s(battery.capacity_j) / 86400.0;
    table.add_row({std::string(v.name),
                   static_cast<long long>(rep.sectors),
                   100.0 * rep.delivery_ratio,
                   100.0 * rep.mean_active_fraction,
                   1e3 * rep.max_sensor_power_w, lifetime_days,
                   1e3 * rep.mean_latency_s});
    if (v.sectors && sim.sector_partition()) {
      std::printf("sector layout:");
      for (const auto& sec : sim.sector_partition()->sectors)
        std::printf(" %zu", sec.sensors.size());
      std::printf(" sensors\n");
    }
  }

  std::printf("\nEnvironment monitoring planning summary (40 sensors, "
              "%.0f B/s each):\n\n%s\n",
              kRate, table.to_ascii().c_str());
  std::printf(
      "Reading: sectoring (§IV) trades nothing on delivery but cuts the\n"
      "worst sensor's awake share, stretching the first battery death —\n"
      "the paper's Fig 7(c) effect, here in engineering units.\n");
  return 0;
}
