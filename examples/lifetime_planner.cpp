// Deployment planning: pick the duty-cycle period that meets a target
// lifetime.  Longer cycles cut idle listening (fewer wakeups per hour)
// but stretch data latency — this sweeps the trade-off for a concrete
// cluster and prints the feasible configurations.
#include <cstdio>
#include <functional>
#include <vector>

#include "core/polling_simulation.hpp"
#include "exp/sweep.hpp"
#include "metrics/lifetime.hpp"
#include "net/deployment.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "exp/flags.hpp"

namespace {

struct Point {
  mhp::Time cycle_period;
};

struct Result {
  double delivery = 0.0;
  double active_pct = 0.0;
  double lifetime_days = 0.0;
  double latency_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  mhp::exp::Flags("example: plan battery lifetime for a deployment").parse(argc, argv);
  using namespace mhp;

  constexpr double kRate = 8.0;           // one packet every 10 s
  constexpr double kTargetDays = 20.0;    // mission requirement
  const BatteryModel battery{2400.0};     // CR2477 coin cell

  Rng rng(99);
  const Deployment dep = deploy_connected_uniform_square(25, 200.0, 60.0, rng);

  std::vector<Point> points;
  for (std::int64_t ms : {250, 500, 1000, 2000, 4000, 8000})
    points.push_back({Time::ms(ms)});

  auto run_point = [&](const Point& p) {
    ProtocolConfig cfg;
    cfg.cycle_period = p.cycle_period;
    cfg.use_sectors = true;
    cfg.seed = 5;
    PollingSimulation sim(dep, cfg, kRate);
    const auto rep = sim.run(Time::sec(90), Time::sec(10));
    Result r;
    r.delivery = 100.0 * rep.delivery_ratio;
    r.active_pct = 100.0 * rep.mean_active_fraction;
    r.lifetime_days = rep.lifetime_s(battery.capacity_j) / 86400.0;
    r.latency_ms = 1e3 * rep.mean_latency_s;
    return r;
  };
  const auto results = mhp::exp::sweep<Point, Result>(
      points, std::function<Result(const Point&)>(run_point));

  std::printf(
      "Lifetime planner: 25 sensors, %.0f B/s each, sectored polling,\n"
      "target lifetime %.0f days on a %.0f J cell\n\n",
      kRate, kTargetDays, battery.capacity_j);

  Table table({"cycle (ms)", "delivery %", "active %", "lifetime (days)",
               "latency (ms)", "meets target"});
  table.set_precision(1, 1);
  table.set_precision(2, 2);
  table.set_precision(3, 1);
  table.set_precision(4, 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const bool ok = results[i].lifetime_days >= kTargetDays &&
                    results[i].delivery >= 99.0;
    table.add_row({static_cast<long long>(
                       points[i].cycle_period.nanos() / 1'000'000),
                   results[i].delivery, results[i].active_pct,
                   results[i].lifetime_days, results[i].latency_ms,
                   std::string(ok ? "yes" : "no")});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf(
      "Reading: the longest cycle that still delivers everything wins —\n"
      "idle listening between wakeups is the dominant energy term, just\n"
      "as the paper's motivation argues.\n");
  return 0;
}
