// Multi-cluster coordination (§V-G): a field of cluster heads whose
// clusters would interfere at the boundaries.  Shows both remedies the
// paper proposes — radio-channel assignment by colouring the (planar)
// cluster adjacency graph, and token rotation — then runs each cluster's
// polling protocol independently on its assigned channel.
#include <cstdio>
#include <vector>

#include "core/coloring.hpp"
#include "core/polling_simulation.hpp"
#include "net/deployment.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "exp/flags.hpp"

int main(int argc, char** argv) {
  mhp::exp::Flags("example: multi-cluster coordination walkthrough").parse(argc, argv);
  using namespace mhp;

  // 3×3 grid of cluster heads, 250 m apart; each head manages a 200 m
  // square of 15 sensors.  Clusters whose heads are within 400 m could
  // interfere (sensor transmissions near shared boundaries).
  constexpr int kGrid = 3;
  constexpr double kPitch = 250.0;
  constexpr double kInterfereRange = 400.0;

  std::vector<Vec2> head_pos;
  for (int y = 0; y < kGrid; ++y)
    for (int x = 0; x < kGrid; ++x)
      head_pos.push_back({x * kPitch, y * kPitch});

  Graph adjacency(head_pos.size());
  for (NodeId a = 0; a < head_pos.size(); ++a)
    for (NodeId b = a + 1; b < head_pos.size(); ++b)
      if (distance(head_pos[a], head_pos[b]) <= kInterfereRange)
        adjacency.add_edge(a, b);

  // Remedy 1: channel assignment = graph colouring (≤6 channels on the
  // planar cluster graph; usually 4 suffice).
  const auto colors = six_color_planar(adjacency);
  std::printf("cluster adjacency: %zu clusters, %zu conflict edges\n",
              adjacency.size(), adjacency.edge_count());
  std::printf("channel assignment uses %d channels (proper: %s)\n\n",
              num_colors(colors),
              proper_coloring(adjacency, colors) ? "yes" : "NO");

  Table table({"cluster", "position", "channel", "delivery %",
               "active %"});
  table.set_precision(3, 1);
  table.set_precision(4, 1);

  // Each cluster runs its own polling simulation on its own channel
  // (channel separation removes inter-cluster interference, so the runs
  // are independent by construction).
  std::uint64_t field_frames = 0;
  for (std::size_t c = 0; c < head_pos.size(); ++c) {
    Rng rng(100 + c);
    const Deployment dep =
        deploy_connected_uniform_square(15, 200.0, 60.0, rng);
    ProtocolConfig cfg;
    cfg.seed = 100 + c;
    PollingSimulation sim(dep, cfg, 20.0);
    const auto rep = sim.run(Time::sec(30), Time::sec(5));
    field_frames += rep.metrics.counter(metric::kChannelFramesTx);
    char pos[32];
    std::snprintf(pos, sizeof(pos), "(%.0f, %.0f)", head_pos[c].x,
                  head_pos[c].y);
    table.add_row({static_cast<long long>(c), std::string(pos),
                   static_cast<long long>(colors[c]),
                   100.0 * rep.delivery_ratio,
                   100.0 * rep.mean_active_fraction});
  }
  std::printf("%s\n", table.to_ascii().c_str());
  std::printf("field total: %llu frames on the air (from the metrics "
              "snapshots)\n\n",
              static_cast<unsigned long long>(field_frames));

  // Remedy 2: a single channel with token rotation — only the token
  // holder's cluster polls in any round, so duty cycles stretch by the
  // cluster count.
  TokenRotation token(head_pos.size());
  std::printf("token rotation on one shared channel (first 12 rounds):\n");
  for (std::uint64_t round = 0; round < 12; ++round)
    std::printf("  round %2llu -> cluster %zu polls\n",
                static_cast<unsigned long long>(round),
                token.holder(round));
  std::printf(
      "\nReading: colouring needs %d radio channels and lets every\n"
      "cluster poll concurrently; the token needs one channel but\n"
      "multiplies each sensor's wake-to-wake cycle by %zu.\n",
      num_colors(colors), head_pos.size());
  return 0;
}
