// Quickstart: build a 30-sensor cluster, run the multi-hop polling
// protocol for a minute of simulated time, and print the headline
// numbers the paper cares about (throughput, active time, energy).
//
// Pass --json to print the full structured report (obs JSON layer)
// instead of the human-readable summary — pipe it into jq or a plotter.
#include <cstdio>
#include <iostream>

#include "core/polling_simulation.hpp"
#include "net/deployment.hpp"
#include "obs/report_json.hpp"
#include "util/rng.hpp"
#include "exp/flags.hpp"

int main(int argc, char** argv) {
  using namespace mhp;
  mhp::exp::Flags flags("30-sensor polling quickstart");
  flags.flag("--json", "print the full structured report instead");
  flags.parse(argc, argv);
  const bool json = flags.has("--json");

  // 30 sensors uniform in a 200 m square, head at the centre, 60 m radio.
  Rng rng(42);
  const Deployment dep =
      deploy_connected_uniform_square(30, 200.0, 60.0, rng);

  ProtocolConfig cfg;
  cfg.cycle_period = Time::ms(1000);
  cfg.oracle_order = 3;

  // Every sensor samples 20 B/s (a quarter packet per second).
  PollingSimulation sim(dep, cfg, /*rate_bps=*/20.0);

  if (json) {
    const SimulationReport rep = sim.run(Time::sec(70), Time::sec(10));
    obs::to_json(rep).write(std::cout, 2);
    std::cout << "\n";
    return 0;
  }

  std::printf("cluster: %zu sensors, max level %zu, max load %lld\n",
              sim.topology().num_sensors(), sim.topology().max_level(),
              static_cast<long long>(sim.relay_plan().max_load()));
  std::printf("interference probes: %llu groups (order %d)\n",
              static_cast<unsigned long long>(sim.oracle().probes()),
              sim.oracle().order());

  const SimulationReport rep = sim.run(Time::sec(70), Time::sec(10));

  std::printf("\n--- 60 s measured ---\n");
  std::printf("offered:    %8.1f B/s\n", rep.offered_bps);
  std::printf("throughput: %8.1f B/s (delivery %.1f%%)\n", rep.throughput_bps,
              100.0 * rep.delivery_ratio);
  std::printf("packets:    %llu generated, %llu delivered, %llu lost\n",
              static_cast<unsigned long long>(rep.packets_generated),
              static_cast<unsigned long long>(rep.packets_delivered),
              static_cast<unsigned long long>(rep.packets_lost));
  std::printf("active:     mean %.2f%%  max %.2f%% of the time\n",
              100.0 * rep.mean_active_fraction,
              100.0 * rep.max_active_fraction);
  std::printf("power:      mean %.3f mW  max %.3f mW\n",
              1e3 * rep.mean_sensor_power_w, 1e3 * rep.max_sensor_power_w);
  std::printf("latency:    mean %.1f ms\n", 1e3 * rep.mean_latency_s);
  std::printf("duty:       mean %.1f ms per cycle\n",
              1e3 * rep.mean_duty_seconds);

  // Every report embeds the runtime's metrics snapshot: the same named
  // counters/gauges exist across all simulation stacks.
  std::printf("\n--- metrics snapshot ---\n");
  for (const auto& [name, value] : rep.metrics.counters)
    std::printf("%-26s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  return 0;
}
